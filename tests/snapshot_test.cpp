//===- tests/snapshot_test.cpp - CoW snapshot equivalence battery -----------===//
//
// The copy-on-write machine refactor must be *unobservable*: a machine
// copy has to behave exactly like the deep copy it replaced, under every
// interleaving of mutations on either side of the share.  This battery
// checks that three ways:
//
//  * aliasing: mutating a copy never changes what the original renders
//    (configKey, logs, committed history), and vice versa;
//  * lockstep: a machine that is re-snapshotted before every rule firing
//    (with old snapshots pinned alive, maximizing shared structure)
//    produces the identical configKey trajectory as one driven in place;
//  * state-graph goldens: explorer totals on fixed scopes — functions of
//    the interned configuration keys — equal, across reduction modes and
//    worker counts, the values the pre-CoW deep-copy machine produced
//    (recorded from the PR 3 build, same scopes, same bounds);
//
// plus an allocation-regression bound on the fixed E12 scope: visiting a
// configuration must cost O(1) chunk traffic, not a full-log copy.
//
//===----------------------------------------------------------------------===//

#include "sim/Explorer.h"

#include "lang/Parser.h"
#include "spec/CounterSpec.h"
#include "spec/RegisterSpec.h"
#include "support/Arena.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace pushpull;

namespace {

/// Fire one rule with a fixed deterministic policy: BEGIN the first idle
/// thread with pending work, else APP the first choice, else PUSH the
/// oldest unpushed entry, else CMT.  Returns false at quiescence.
bool stepOnce(PushPullMachine &M) {
  for (const ThreadState &Th : M.threads()) {
    TxId T = Th.Tid;
    if (!Th.InTx) {
      if (!Th.Pending.empty() && M.beginTx(T))
        return true;
      continue;
    }
    std::vector<AppChoice> Cs = M.appChoices(T);
    if (!Cs.empty() && !Cs[0].Completions.empty() &&
        M.app(T, Cs[0].StepIdx, 0).Applied)
      return true;
    size_t I = 0;
    bool Pushed = false;
    for (const LocalEntry &E : Th.L.entries()) {
      if (E.Kind == LocalKind::NotPushed && M.push(T, I).Applied) {
        Pushed = true;
        break;
      }
      ++I;
    }
    if (Pushed)
      return true;
    if (M.commit(T).Applied)
      return true;
  }
  return false;
}

std::vector<std::vector<CodePtr>> parsePrograms(
    const std::vector<std::string> &Ps) {
  std::vector<std::vector<CodePtr>> Out;
  for (const std::string &P : Ps)
    Out.push_back({parseOrDie(P)});
  return Out;
}

} // namespace

// ---------------------------------------------------------------------------
// Aliasing: a share is observationally a deep copy.
// ---------------------------------------------------------------------------

TEST(Snapshot, CopyIsObservationallyIndependent) {
  CounterSpec Spec("c", 1, 3);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  for (int I = 0; I < 3; ++I)
    M.addThread({parseOrDie("tx { c.inc(0); c.inc(0) }")});

  // Advance the original a little so logs are non-empty at the share.
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE(stepOnce(M));
  std::string KeyAtShare = M.configKey();

  PushPullMachine Copy(M);
  EXPECT_EQ(Copy.configKey(), KeyAtShare);

  // Drive the copy to quiescence; the original must not move.
  while (stepOnce(Copy))
    ;
  EXPECT_TRUE(Copy.quiescent());
  EXPECT_EQ(M.configKey(), KeyAtShare);
  EXPECT_NE(Copy.configKey(), KeyAtShare);
  EXPECT_EQ(M.committed().size(), 0u);
  EXPECT_EQ(Copy.committed().size(), 3u);

  // And the other direction: mutating the original leaves the (already
  // diverged) copy alone.
  std::string CopyKey = Copy.configKey();
  while (stepOnce(M))
    ;
  EXPECT_EQ(Copy.configKey(), CopyKey);
  // Both reached the same terminal configuration by the same policy.
  EXPECT_EQ(M.configKey(), Copy.configKey());
}

// ---------------------------------------------------------------------------
// Lockstep: snapshot-per-step equals drive-in-place, key for key.
// ---------------------------------------------------------------------------

TEST(Snapshot, SnapshottedMachineTracksInPlaceMachineKeyForKey) {
  struct Case {
    std::function<std::unique_ptr<SequentialSpec>()> MakeSpec;
    std::vector<std::string> Programs;
  };
  std::vector<Case> Cases = {
      {[] { return std::make_unique<CounterSpec>("c", 1, 3); },
       {"tx { c.inc(0); c.inc(0) }", "tx { c.inc(0) }"}},
      {[] { return std::make_unique<RegisterSpec>("mem", 1, 2); },
       {"tx { v := mem.read(0); mem.write(0, 1) }", "tx { mem.write(0, 0) }",
        "tx { w := mem.read(0) }"}},
  };
  for (size_t CI = 0; CI < Cases.size(); ++CI) {
    auto SpecA = Cases[CI].MakeSpec();
    auto SpecB = Cases[CI].MakeSpec();
    MoverChecker MoversA(*SpecA), MoversB(*SpecB);
    PushPullMachine A(*SpecA, MoversA);
    PushPullMachine B(*SpecB, MoversB);
    for (const std::string &P : Cases[CI].Programs) {
      A.addThread({parseOrDie(P)});
      B.addThread({parseOrDie(P)});
    }

    // B is re-snapshotted before every firing and every retired snapshot
    // stays pinned, so each firing works on maximally shared chunks.
    std::vector<PushPullMachine> Pinned;
    for (int Step = 0;; ++Step) {
      ASSERT_EQ(A.configKey(), B.configKey())
          << "case " << CI << " diverged at step " << Step;
      Pinned.push_back(B); // Share everything B owns.
      PushPullMachine Next(B);
      bool MovedA = stepOnce(A);
      bool MovedB = stepOnce(Next);
      ASSERT_EQ(MovedA, MovedB) << "case " << CI << " step " << Step;
      B = std::move(Next);
      if (!MovedA)
        break;
    }
    EXPECT_TRUE(A.quiescent());
    EXPECT_EQ(A.committedLog().size(), B.committedLog().size());
  }
}

// ---------------------------------------------------------------------------
// State-graph goldens: the interned key set is the deep-copy one.
// ---------------------------------------------------------------------------

TEST(Snapshot, ExplorerTotalsMatchDeepCopyGoldens) {
  // Golden totals recorded from the pre-CoW (deep-copy successor) build
  // on the same scopes with the same bounds.  ConfigsVisited and
  // TerminalConfigs are pure functions of the interned configuration
  // keys, so equality here means the CoW machine and the canonicalized
  // key assembly partition the state space identically.
  struct Golden {
    Reduction Mode;
    uint64_t Configs, Terminals, Pruned;
  };
  struct ScopeGolden {
    std::function<std::unique_ptr<SequentialSpec>()> MakeSpec;
    std::vector<std::string> Programs;
    std::vector<Golden> PerMode;
  };
  std::vector<ScopeGolden> Scopes = {
      {[] { return std::make_unique<CounterSpec>("c", 1, 3); },
       {"tx { c.inc(0) }", "tx { c.inc(0) }", "tx { c.inc(0) }"},
       {{Reduction::None, 4923, 6, 0},
        {Reduction::Sleep, 4923, 6, 5673},
        {Reduction::Persistent, 4769, 6, 5459},
        {Reduction::PersistentSymmetry, 805, 1, 1065}}},
      {[] { return std::make_unique<RegisterSpec>("mem", 1, 2); },
       {"tx { v := mem.read(0); mem.write(0, 1) }", "tx { mem.write(0, 0) }"},
       {{Reduction::None, 96, 3, 0},
        {Reduction::Sleep, 96, 3, 38},
        {Reduction::Persistent, 85, 3, 29},
        {Reduction::PersistentSymmetry, 85, 3, 29}}},
  };
  for (size_t SI = 0; SI < Scopes.size(); ++SI) {
    for (const Golden &G : Scopes[SI].PerMode) {
      for (unsigned Threads : {1u, 4u}) {
        auto Spec = Scopes[SI].MakeSpec();
        MoverChecker Movers(*Spec);
        ExplorerConfig EC;
        EC.Reduce = G.Mode;
        EC.Threads = Threads;
        Explorer E(*Spec, Movers, EC);
        ExplorerReport R = E.explore(parsePrograms(Scopes[SI].Programs));
        std::string Tag = "scope " + std::to_string(SI) + " / " +
                          toString(G.Mode) +
                          " / threads=" + std::to_string(Threads);
        ASSERT_FALSE(R.Truncated) << Tag;
        EXPECT_EQ(R.ConfigsVisited, G.Configs) << Tag;
        EXPECT_EQ(R.TerminalConfigs, G.Terminals) << Tag;
        EXPECT_TRUE(R.clean()) << Tag << ": " << R.FirstFailure;
        // Work counters are deterministic only sequentially.
        if (Threads == 1) {
          EXPECT_EQ(R.FiringsPruned, G.Pruned) << Tag;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Allocation regression: visiting a configuration is O(1) chunk traffic.
// ---------------------------------------------------------------------------

TEST(Snapshot, AllocationBoundsOnE12Scope) {
  CounterSpec Spec("c", 1, 3);
  MoverChecker Movers(Spec);
  ExplorerConfig EC;
  EC.Reduce = Reduction::None;
  Explorer E(Spec, Movers, EC);
  std::vector<std::vector<CodePtr>> Programs = parsePrograms(
      {"tx { c.inc(0) }", "tx { c.inc(0) }", "tx { c.inc(0) }"});

  memstats::Snapshot Before = memstats::read();
  ExplorerReport R = E.explore(Programs);
  memstats::Snapshot D = memstats::read().delta(Before);

  ASSERT_EQ(R.ConfigsVisited, 4923u);
  // Successor expansion copies the machine, not the logs: chunk clones
  // and fresh chunk bytes per visited configuration stay bounded however
  // long the logs grow.  The measured values on this scope are ~1.9
  // deep copies and ~4.9 KiB per config; the bounds leave slack for
  // layout drift but would catch any return to copy-per-successor
  // behavior (which costs an order of magnitude more).
  double PerConfigDeep =
      static_cast<double>(D.DeepCopies) / static_cast<double>(R.ConfigsVisited);
  double PerConfigBytes = static_cast<double>(D.SnapshotBytes) /
                          static_cast<double>(R.ConfigsVisited);
  EXPECT_LT(PerConfigDeep, 4.0);
  EXPECT_LT(PerConfigBytes, 10240.0);
  // And the sharing machinery was actually exercised.
  EXPECT_GT(D.MachineCopies, R.ConfigsVisited / 2);
  EXPECT_GT(D.ChunkShares, D.DeepCopies);
}
