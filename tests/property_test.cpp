//===- tests/property_test.cpp - Parameterized property sweeps ----------------===//
//
// Property-style tests over generated inputs, parameterized with TEST_P:
//
//   * prefix closure of `allowed` (Parameter 3.1) on randomized logs of
//     every specification;
//   * the definitional law of left-movers (Definition 4.1): whenever the
//     checker answers Yes for (A, B), every sampled reachable log l
//     satisfies l.A.B =< l.B.A — and whenever it answers No, some
//     reachable log refutes it;
//   * do/undo reversibility: a random forward/backward walk of machine
//     rules never wedges, and rewinding everything restores the otx;
//   * engine x seed matrix: every engine on its home workload reaches
//     quiescence and the oracle certifies commit-order (or any-order for
//     the dependent engine) serializability.
//
//===----------------------------------------------------------------------===//

#include "check/Serializability.h"
#include "core/Invariants.h"
#include "core/Machine.h"
#include "core/Mover.h"
#include "core/Precongruence.h"
#include "lang/Parser.h"
#include "sim/Scheduler.h"
#include "sim/Workload.h"
#include "spec/BankSpec.h"
#include "spec/CompositeSpec.h"
#include "spec/CounterSpec.h"
#include "spec/MapSpec.h"
#include "spec/QueueSpec.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"
#include "support/Rng.h"
#include "tm/BoostingTM.h"
#include "tm/CheckpointTM.h"
#include "tm/DependentTM.h"
#include "tm/EarlyReleaseTM.h"
#include "tm/HtmTM.h"
#include "tm/IrrevocableTM.h"
#include "tm/OptimisticTM.h"
#include "tm/PessimisticCommitTM.h"

#include <gtest/gtest.h>

#include <memory>

using namespace pushpull;

namespace {

/// Factory for the small instance of each spec family.
std::shared_ptr<SequentialSpec> makeSpec(const std::string &Kind) {
  if (Kind == "register")
    return std::make_shared<RegisterSpec>("mem", 2, 3);
  if (Kind == "counter")
    return std::make_shared<CounterSpec>("c", 2, 4);
  if (Kind == "set")
    return std::make_shared<SetSpec>("set", 3);
  if (Kind == "map")
    return std::make_shared<MapSpec>("map", 3, 2);
  if (Kind == "queue")
    return std::make_shared<QueueSpec>("q", 2, 2);
  if (Kind == "bank")
    return std::make_shared<BankSpec>("bank", 2, 3, 1);
  if (Kind == "composite") {
    // A small Section 7-style product: a boosted set next to a counter.
    auto S = std::make_shared<CompositeSpec>();
    S->add("s", std::make_shared<SetSpec>("s", 2));
    S->add("c", std::make_shared<CounterSpec>("c", 1, 3));
    return S;
  }
  return nullptr;
}

/// The seven spec instances every lemma battery sweeps: the six
/// primitive families plus the disjoint product.
const std::string AllSevenSpecs[] = {"register", "counter", "set",   "map",
                                     "queue",    "bank",    "composite"};

/// Generate a random *allowed* log by walking the spec with probe ops.
std::vector<Operation> randomAllowedLog(const SequentialSpec &S, Rng &R,
                                        size_t MaxLen) {
  std::vector<Operation> Probes = S.probeOps();
  std::vector<Operation> Log;
  StateSet View = S.initial();
  size_t Len = R.below(MaxLen + 1);
  OpId NextId = 1000;
  for (size_t I = 0; I < Len; ++I) {
    // Collect the probes enabled in the current denotation.
    std::vector<Operation> Enabled;
    for (const Operation &P : Probes)
      if (!S.applyOp(View, P).empty())
        Enabled.push_back(P);
    if (Enabled.empty())
      break;
    Operation Op = R.pick(Enabled);
    Op.Id = NextId++;
    View = S.applyOp(View, Op);
    Log.push_back(std::move(Op));
  }
  return Log;
}

} // namespace

// --- Prefix closure ----------------------------------------------------------

class PrefixClosureTest : public ::testing::TestWithParam<std::string> {};

TEST_P(PrefixClosureTest, RandomAllowedLogsArePrefixClosed) {
  auto Spec = makeSpec(GetParam());
  ASSERT_TRUE(Spec);
  Rng R(2024);
  for (int Trial = 0; Trial < 50; ++Trial) {
    std::vector<Operation> Log = randomAllowedLog(*Spec, R, 8);
    ASSERT_TRUE(Spec->allowed(Log));
    for (size_t N = 0; N <= Log.size(); ++N)
      EXPECT_TRUE(Spec->allowed({Log.begin(), Log.begin() + N}))
          << GetParam() << " trial " << Trial << " prefix " << N;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, PrefixClosureTest,
                         ::testing::ValuesIn(AllSevenSpecs),
                         [](const auto &Info) { return Info.param; });

// --- Definition 4.1 law -------------------------------------------------------

class MoverLawTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MoverLawTest, CheckerAgreesWithDefinitionOnSamples) {
  auto Spec = makeSpec(GetParam());
  ASSERT_TRUE(Spec);
  MoverChecker Movers(*Spec);
  PrecongruenceChecker Pre(*Spec);
  Rng R(7);
  std::vector<Operation> Probes = Spec->probeOps();

  int Checked = 0;
  for (int Trial = 0; Trial < 40 && Checked < 25; ++Trial) {
    Operation A = R.pick(Probes);
    Operation B = R.pick(Probes);
    A.Id = 1;
    B.Id = 2;
    Tri V = Movers.leftMover(A, B);
    if (V == Tri::Unknown)
      continue;
    ++Checked;
    // Sample reachable logs l and check l.A.B =< l.B.A matches.
    bool Refuted = false;
    for (int S = 0; S < 10; ++S) {
      std::vector<Operation> L = randomAllowedLog(*Spec, R, 5);
      std::vector<Operation> AB = L, BA = L;
      AB.push_back(A);
      AB.push_back(B);
      BA.push_back(B);
      BA.push_back(A);
      Tri P = Pre.checkLogs(AB, BA);
      if (P == Tri::No)
        Refuted = true;
      if (V == Tri::Yes)
        EXPECT_NE(P, Tri::No)
            << GetParam() << ": " << A.toString() << " <| " << B.toString()
            << " claimed Yes but refuted after a reachable log";
    }
    (void)Refuted; // A No verdict's witness may lie outside the sample.
  }
  EXPECT_GT(Checked, 0) << "sweep exercised no definite verdicts";
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, MoverLawTest,
                         ::testing::Values("register", "counter", "set",
                                           "map", "queue", "bank"),
                         [](const auto &Info) { return Info.param; });

// --- Do/undo walks ------------------------------------------------------------

class DoUndoTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DoUndoTest, RandomForwardBackwardWalkIsSafe) {
  SetSpec Spec("set", 3);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  WorkloadConfig WC;
  WC.Threads = 2;
  WC.TxPerThread = 1;
  WC.OpsPerTx = 3;
  WC.KeyRange = 3;
  WC.Seed = GetParam();
  for (auto &P : genSetWorkload(Spec, WC))
    M.addThread(P);
  for (TxId T = 0; T < 2; ++T)
    ASSERT_TRUE(M.beginTx(T));

  Rng R(GetParam() * 31 + 7);
  for (int Step = 0; Step < 200; ++Step) {
    TxId T = static_cast<TxId>(R.below(2));
    const ThreadState &Th = M.thread(T);
    if (!Th.InTx)
      continue;
    switch (R.below(6)) {
    case 0: { // APP
      auto Choices = M.appChoices(T);
      if (!Choices.empty()) {
        const AppChoice &C = R.pick(Choices);
        M.app(T, C.StepIdx, R.below(C.Completions.size()));
      }
      break;
    }
    case 1: // UNAPP
      M.unapp(T);
      break;
    case 2: { // PUSH a random npshd entry
      auto Idx = Th.L.indicesOf(LocalKind::NotPushed);
      if (!Idx.empty())
        M.push(T, R.pick(Idx));
      break;
    }
    case 3: { // UNPUSH a random pshd entry
      auto Idx = Th.L.indicesOf(LocalKind::Pushed);
      if (!Idx.empty())
        M.unpush(T, R.pick(Idx));
      break;
    }
    case 4: { // PULL a random global entry
      if (!M.global().empty())
        M.pull(T, R.below(M.global().size()));
      break;
    }
    case 5: { // UNPULL a random pld entry
      auto Idx = Th.L.indicesOf(LocalKind::Pulled);
      if (!Idx.empty())
        M.unpull(T, R.pick(Idx));
      break;
    }
    }
  }

  // Rewind both threads fully: every backward rule must cooperate (in
  // dependency order), and the otx must be restored exactly.
  for (int Round = 0; Round < 8; ++Round) {
    for (TxId T = 0; T < 2; ++T) {
      while (true) {
        const ThreadState &Th = M.thread(T);
        if (!Th.InTx || Th.L.empty())
          break;
        size_t Last = Th.L.size() - 1;
        bool Progress = false;
        switch (Th.L[Last].Kind) {
        case LocalKind::Pulled:
          Progress = M.unpull(T, Last).Applied;
          break;
        case LocalKind::NotPushed:
          Progress = M.unapp(T).Applied;
          break;
        case LocalKind::Pushed:
          Progress = M.unpush(T, Last).Applied && M.unapp(T).Applied;
          break;
        }
        if (!Progress)
          break; // Another thread's pull blocks us this round.
      }
    }
  }
  for (TxId T = 0; T < 2; ++T) {
    const ThreadState &Th = M.thread(T);
    ASSERT_TRUE(Th.L.empty()) << "full rewind wedged for t" << T;
    EXPECT_TRUE(codeEquals(Th.Code, Th.OrigCode));
    EXPECT_EQ(Th.Sigma, Th.OrigSigma);
  }
  EXPECT_TRUE(M.global().empty()) << "everything retracted";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoUndoTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

// --- Engine x seed matrix -----------------------------------------------------

struct EngineCase {
  std::string Engine;
  uint64_t Seed;
};

class EngineMatrixTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(EngineMatrixTest, QuiescentAndSerializable) {
  auto [Engine, Seed] = GetParam();
  RegisterSpec Spec("mem", 2, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  WorkloadConfig WC;
  WC.Threads = 3;
  WC.TxPerThread = 2;
  WC.OpsPerTx = 2;
  WC.KeyRange = 2;
  WC.ReadPct = 50;
  WC.Seed = Seed;
  for (auto &P : genRegisterWorkload(Spec, WC))
    M.addThread(P);

  std::unique_ptr<TMEngine> E;
  if (Engine == "optimistic")
    E = std::make_unique<OptimisticTM>(M, OptimisticConfig{Seed});
  else if (Engine == "checkpoint")
    E = std::make_unique<CheckpointTM>(M, CheckpointConfig{Seed, 2});
  else if (Engine == "boosting")
    E = std::make_unique<BoostingTM>(M, BoostingConfig{Seed, 8, true});
  else if (Engine == "pessimistic") {
    PessimisticConfig C;
    C.Seed = Seed;
    E = std::make_unique<PessimisticCommitTM>(M, std::move(C));
  } else if (Engine == "irrevocable")
    E = std::make_unique<IrrevocableTM>(M, IrrevocableConfig{Seed, 0});
  else if (Engine == "dependent") {
    DependentConfig C;
    C.Seed = Seed;
    E = std::make_unique<DependentTM>(M, C);
  } else if (Engine == "early-release")
    E = std::make_unique<EarlyReleaseTM>(M, EarlyReleaseConfig{Seed});
  else if (Engine == "htm") {
    HtmConfig C;
    C.Seed = Seed;
    E = std::make_unique<HtmTM>(M, C);
  }
  ASSERT_TRUE(E);

  Scheduler Sched({SchedulePolicy::RandomUniform, Seed * 7 + 1, 300000});
  RunStats St = Sched.run(*E);
  ASSERT_TRUE(St.Quiescent) << Engine << " seed " << Seed;

  SerializabilityChecker Oracle(Spec);
  // The dependent engine may commit in non-dependency order only when
  // detangled; any-order search covers it.  Everyone else must satisfy
  // the commit-order witness of Theorem 5.17's proof.
  SerializabilityVerdict V = Engine == "dependent"
                                 ? Oracle.checkAnyOrder(M)
                                 : Oracle.checkCommitOrder(M);
  EXPECT_EQ(V.Serializable, Tri::Yes)
      << Engine << " seed " << Seed << ": " << V.Detail;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineMatrixTest,
    ::testing::Combine(::testing::Values("optimistic", "checkpoint",
                                         "boosting", "pessimistic",
                                         "irrevocable", "dependent",
                                         "early-release", "htm"),
                       ::testing::Values(11u, 22u, 33u, 44u)),
    [](const auto &Info) {
      std::string Name = std::get<0>(Info.param);
      for (char &C : Name)
        if (C == '-')
          C = '_';
      return Name + "_s" + std::to_string(std::get<1>(Info.param));
    });

// --- Lemma 5.1 ---------------------------------------------------------------

class Lemma51Test : public ::testing::TestWithParam<std::string> {};

TEST_P(Lemma51Test, MoverAllowsLaw) {
  // Lemma 5.1: l2 <| op and allowed(l1.l2.op) imply allowed(l1.op).
  // Sample l1, l2 as random allowed logs and op from the probe alphabet.
  auto Spec = makeSpec(GetParam());
  ASSERT_TRUE(Spec);
  MoverChecker Movers(*Spec);
  Rng R(99);
  std::vector<Operation> Probes = Spec->probeOps();
  int Exercised = 0;
  for (int Trial = 0; Trial < 60 && Exercised < 20; ++Trial) {
    std::vector<Operation> L1 = randomAllowedLog(*Spec, R, 4);
    std::vector<Operation> L2 = randomAllowedLog(*Spec, R, 3);
    Operation Op = R.pick(Probes);
    Op.Id = 9999;
    // Check the hypothesis l2 <| op (every element of l2 moves left of op).
    Tri Mover = Tri::Yes;
    for (const Operation &X : L2)
      Mover = triAnd(Mover, Movers.leftMover(X, Op));
    if (Mover != Tri::Yes)
      continue;
    std::vector<Operation> Whole = L1;
    Whole.insert(Whole.end(), L2.begin(), L2.end());
    Whole.push_back(Op);
    if (!Spec->allowed(Whole))
      continue;
    ++Exercised;
    std::vector<Operation> Short = L1;
    Short.push_back(Op);
    EXPECT_TRUE(Spec->allowed(Short))
        << GetParam() << ": Lemma 5.1 violated for op " << Op.toString();
  }
  EXPECT_GT(Exercised, 0) << "sweep exercised no instances";
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, Lemma51Test,
                         ::testing::Values("register", "counter", "set",
                                           "map", "bank"),
                         [](const auto &Info) { return Info.param; });

// --- Lemma 5.4 ---------------------------------------------------------------

class Lemma54Test : public ::testing::TestWithParam<std::string> {};

TEST_P(Lemma54Test, BlockSlideLaw) {
  // Lemma 5.4 (block slide): if every x in l2 is a left-mover of op, the
  // whole block slides — l1.l2.op =< l1.op.l2.  This is the inductive
  // lift of Definition 4.1 the PUSH rule's criterion (ii) relies on when
  // it commutes a pushed suffix past a foreign operation.
  auto Spec = makeSpec(GetParam());
  ASSERT_TRUE(Spec);
  MoverChecker Movers(*Spec);
  PrecongruenceChecker Pre(*Spec);
  Rng R(541);
  std::vector<Operation> Probes = Spec->probeOps();
  int Exercised = 0;
  for (int Trial = 0; Trial < 80 && Exercised < 20; ++Trial) {
    std::vector<Operation> L1 = randomAllowedLog(*Spec, R, 4);
    std::vector<Operation> L2 = randomAllowedLog(*Spec, R, 3);
    if (L2.empty())
      continue; // An empty block slides trivially.
    for (size_t I = 0; I < L2.size(); ++I)
      L2[I].Id = 2000 + I;
    Operation Op = R.pick(Probes);
    Op.Id = 9999;
    // Hypothesis: the entire block l2 moves left of op.
    Tri Mover = Tri::Yes;
    for (const Operation &X : L2)
      Mover = triAnd(Mover, Movers.leftMover(X, Op));
    if (Mover != Tri::Yes)
      continue;
    std::vector<Operation> Slid = L1, Unslid = L1;
    Unslid.insert(Unslid.end(), L2.begin(), L2.end());
    Unslid.push_back(Op);
    Slid.push_back(Op);
    Slid.insert(Slid.end(), L2.begin(), L2.end());
    if (!Spec->allowed(Unslid))
      continue; // Vacuous: the left log denotes nothing.
    ++Exercised;
    EXPECT_NE(Pre.checkLogs(Unslid, Slid), Tri::No)
        << GetParam() << ": Lemma 5.4 violated sliding "
        << Op.toString() << " across a " << L2.size() << "-op block";
  }
  EXPECT_GT(Exercised, 0) << "sweep exercised no instances";
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, Lemma54Test,
                         ::testing::ValuesIn(AllSevenSpecs),
                         [](const auto &Info) { return Info.param; });

// --- Lemma 5.6 ---------------------------------------------------------------

class Lemma56Test : public ::testing::TestWithParam<std::string> {};

TEST_P(Lemma56Test, DenotationSubsetImpliesPrecongruence) {
  // Lemma 5.6: [[l1]] subset-of [[l2]] implies l1 =< l2.  This is exactly
  // the subset shortcut PrecongruenceChecker::check prunes with, so the
  // battery pins the shortcut's soundness from the outside: whenever the
  // denotations nest, the full coinductive search must answer Yes, and
  // contrapositively a No verdict must come with non-nested denotations.
  auto Spec = makeSpec(GetParam());
  ASSERT_TRUE(Spec);
  PrecongruenceChecker Pre(*Spec);
  Rng R(1733);
  int Exercised = 0, Proper = 0;
  for (int Trial = 0; Trial < 60; ++Trial) {
    std::vector<Operation> L1 = randomAllowedLog(*Spec, R, 5);
    // Every third trial compares a log against itself — the reflexive
    // instance the diagonal of the lemma guarantees.
    bool Reflexive = Trial % 3 == 0;
    std::vector<Operation> L2 =
        Reflexive ? L1 : randomAllowedLog(*Spec, R, 5);
    StateSet D1 = Spec->denote(L1);
    StateSet D2 = Spec->denote(L2);
    Tri V = Pre.checkLogs(L1, L2);
    if (D1.subsetOf(D2)) {
      ++Exercised;
      if (!Reflexive)
        ++Proper;
      EXPECT_EQ(V, Tri::Yes)
          << GetParam() << ": Lemma 5.6 violated on trial " << Trial;
    } else if (V == Tri::No) {
      // Soundness of the contrapositive: a refuted pair can never have
      // nested denotations.
      EXPECT_FALSE(D1.subsetOf(D2)) << GetParam();
    }
  }
  EXPECT_GT(Exercised, 0) << "sweep exercised no instances";
  (void)Proper; // Non-reflexive subsets depend on the spec's alphabet.
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, Lemma56Test,
                         ::testing::ValuesIn(AllSevenSpecs),
                         [](const auto &Info) { return Info.param; });

// --- Lemma 5.13 --------------------------------------------------------------

namespace {

/// Two contended hand-written threads per spec family, touching
/// overlapping keys so pulls and pushes interleave.
std::vector<std::string> lemma513Programs(const std::string &Kind) {
  if (Kind == "register")
    return {"tx { mem.write(0, 1); a := mem.read(1) }",
            "tx { mem.write(1, 2); b := mem.read(0) }"};
  if (Kind == "counter")
    return {"tx { c.inc(0); a := c.read(1) }",
            "tx { c.inc(1); c.dec(0) }"};
  if (Kind == "set")
    return {"tx { a := set.add(0); b := set.contains(1) }",
            "tx { c := set.add(1); d := set.remove(0) }"};
  if (Kind == "map")
    return {"tx { map.put(0, 1); a := map.get(1) }",
            "tx { map.put(1, 0); b := map.remove(0) }"};
  if (Kind == "queue")
    return {"tx { a := q.enq(0); b := q.deq() }", "tx { c := q.enq(1) }"};
  if (Kind == "bank")
    return {"tx { bank.deposit(0, 1); a := bank.balance(1) }",
            "tx { b := bank.transfer(0, 1, 1) }"};
  if (Kind == "composite")
    return {"tx { a := s.add(0); c.inc(0) }",
            "tx { b := s.contains(1); c.dec(0) }"};
  return {};
}

} // namespace

class Lemma513Test : public ::testing::TestWithParam<std::string> {};

TEST_P(Lemma513Test, ILocalReorderHoldsAlongRandomRuleWalks) {
  // Lemma 5.13 (I_localReorder): at every reachable configuration, each
  // thread's effL(L) is a precongruence-preserving reordering of the
  // chronological local log.  Walk the seven rules at random — including
  // the backward ones, which are where a reordering bug would creep in —
  // and audit the invariant as we go.
  auto Spec = makeSpec(GetParam());
  ASSERT_TRUE(Spec);
  MoverChecker Movers(*Spec);
  PrecongruenceChecker Pre(*Spec);
  PushPullMachine M(*Spec, Movers);
  for (const std::string &P : lemma513Programs(GetParam()))
    M.addThread({parseOrDie(P)});
  for (TxId T = 0; T < 2; ++T)
    ASSERT_TRUE(M.beginTx(T));

  auto Audit = [&](int Step) {
    for (TxId T = 0; T < 2; ++T) {
      const ThreadState &Th = M.thread(T);
      if (!Th.InTx)
        continue;
      InvariantReport Rep = checkILocalReorder(Th, M.global(), Pre, *Spec);
      EXPECT_TRUE(Rep.Holds) << GetParam() << " step " << Step << " t" << T
                             << ": " << Rep.Which << ": " << Rep.Detail;
    }
  };

  Rng R(4211);
  int Audited = 0;
  for (int Step = 0; Step < 160; ++Step) {
    TxId T = static_cast<TxId>(R.below(2));
    const ThreadState &Th = M.thread(T);
    if (!Th.InTx)
      continue;
    switch (R.below(6)) {
    case 0: { // APP
      auto Choices = M.appChoices(T);
      if (!Choices.empty()) {
        const AppChoice &C = R.pick(Choices);
        M.app(T, C.StepIdx, R.below(C.Completions.size()));
      }
      break;
    }
    case 1: // UNAPP
      M.unapp(T);
      break;
    case 2: { // PUSH
      auto Idx = Th.L.indicesOf(LocalKind::NotPushed);
      if (!Idx.empty())
        M.push(T, R.pick(Idx));
      break;
    }
    case 3: { // UNPUSH
      auto Idx = Th.L.indicesOf(LocalKind::Pushed);
      if (!Idx.empty())
        M.unpush(T, R.pick(Idx));
      break;
    }
    case 4: { // PULL
      if (!M.global().empty())
        M.pull(T, R.below(M.global().size()));
      break;
    }
    case 5: { // UNPULL
      auto Idx = Th.L.indicesOf(LocalKind::Pulled);
      if (!Idx.empty())
        M.unpull(T, R.pick(Idx));
      break;
    }
    }
    if (Step % 8 == 0) {
      Audit(Step);
      ++Audited;
    }
  }
  Audit(160);
  EXPECT_GT(Audited, 0);
}

INSTANTIATE_TEST_SUITE_P(AllSpecs, Lemma513Test,
                         ::testing::ValuesIn(AllSevenSpecs),
                         [](const auto &Info) { return Info.param; });

// --- Engine matrix under PCT scheduling ----------------------------------------

class EnginePctTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(EnginePctTest, QuiescentAndSerializableUnderPriorities) {
  auto [Engine, Seed] = GetParam();
  RegisterSpec Spec("mem", 2, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  WorkloadConfig WC;
  WC.Threads = 3;
  WC.TxPerThread = 2;
  WC.OpsPerTx = 2;
  WC.KeyRange = 2;
  WC.Seed = Seed;
  for (auto &P : genRegisterWorkload(Spec, WC))
    M.addThread(P);

  std::unique_ptr<TMEngine> E;
  if (Engine == "optimistic")
    E = std::make_unique<OptimisticTM>(M, OptimisticConfig{Seed});
  else if (Engine == "boosting")
    E = std::make_unique<BoostingTM>(M, BoostingConfig{Seed, 8, true});
  else if (Engine == "pessimistic") {
    PessimisticConfig C;
    C.Seed = Seed;
    E = std::make_unique<PessimisticCommitTM>(M, std::move(C));
  } else if (Engine == "htm") {
    HtmConfig C;
    C.Seed = Seed;
    E = std::make_unique<HtmTM>(M, C);
  }
  ASSERT_TRUE(E);

  SchedulerConfig SC;
  SC.Policy = SchedulePolicy::PriorityChangePoints;
  SC.Seed = Seed * 13 + 5;
  SC.MaxSteps = 300000;
  RunStats St = Scheduler(SC).run(*E);
  ASSERT_TRUE(St.Quiescent) << Engine << " seed " << Seed;
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes)
      << Engine << " seed " << Seed;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EnginePctTest,
    ::testing::Combine(::testing::Values("optimistic", "boosting",
                                         "pessimistic", "htm"),
                       ::testing::Values(3u, 7u)),
    [](const auto &Info) {
      return std::get<0>(Info.param) + "_s" +
             std::to_string(std::get<1>(Info.param));
    });

// --- Full-validation engine sweep ----------------------------------------------

class FullValidationTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FullValidationTest, InvariantsHoldAfterEveryRule) {
  // Full mode re-checks the Section 5.3 invariants after every mutation
  // and aborts the process on violation — so merely *finishing* this run
  // is the assertion.
  std::string Engine = GetParam();
  RegisterSpec Spec("mem", 2, 2);
  MoverChecker Movers(Spec);
  MachineConfig MC;
  MC.Level = ValidationLevel::Full;
  PushPullMachine M(Spec, Movers, MC);
  WorkloadConfig WC;
  WC.Threads = 3;
  WC.TxPerThread = 2;
  WC.OpsPerTx = 2;
  WC.KeyRange = 2;
  WC.Seed = 77;
  for (auto &P : genRegisterWorkload(Spec, WC))
    M.addThread(P);

  std::unique_ptr<TMEngine> E;
  if (Engine == "optimistic")
    E = std::make_unique<OptimisticTM>(M, OptimisticConfig{77});
  else if (Engine == "boosting")
    E = std::make_unique<BoostingTM>(M, BoostingConfig{77, 8, true});
  else if (Engine == "dependent") {
    DependentConfig C;
    C.Seed = 77;
    E = std::make_unique<DependentTM>(M, C);
  } else if (Engine == "htm") {
    HtmConfig C;
    C.Seed = 77;
    E = std::make_unique<HtmTM>(M, C);
  }
  ASSERT_TRUE(E);
  Scheduler Sched({SchedulePolicy::RandomUniform, 78, 300000});
  RunStats St = Sched.run(*E);
  EXPECT_TRUE(St.Quiescent);
}

INSTANTIATE_TEST_SUITE_P(Engines, FullValidationTest,
                         ::testing::Values("optimistic", "boosting",
                                           "dependent", "htm"),
                         [](const auto &Info) { return Info.param; });
