//===- tests/commut_test.cpp - Certified commutativity table battery ----------===//
//
// The mover table's verdicts gate partial-order reduction and the
// whole-program serializability prover, so a wrong "strongly commutes"
// answer would silently hide interleavings or certify racy programs.
// The battery therefore checks the full trust chain: the reachable
// family cross-validates against core/Mover's enumeration, every Strong
// verdict's certificate replays through the independent checker (and
// tampered certificates are rejected), Strong never contradicts the
// Definition 4.1 precongruence verdicts, strong pairs commute
// dynamically on fuzzed probe logs, the method-pair summaries recover
// the expected argument predicates, and the prover proves/refutes the
// shipped scenario pair.
//
//===----------------------------------------------------------------------===//

#include "analysis/MoverTable.h"

#include "lang/Parser.h"
#include "sim/Explorer.h"
#include "spec/CounterSpec.h"
#include "spec/MapSpec.h"
#include "spec/RegisterSpec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <mutex>
#include <random>
#include <sstream>

using namespace pushpull;

namespace {

/// Probe index with the given method and first argument; dies if absent.
size_t probeIdx(const std::vector<Operation> &Probes,
                const std::string &Method, Value Arg0) {
  for (size_t I = 0; I < Probes.size(); ++I)
    if (Probes[I].Call.Method == Method && !Probes[I].Call.Args.empty() &&
        Probes[I].Call.Args[0] == Arg0)
      return I;
  ADD_FAILURE() << "no probe " << Method << "(" << Arg0 << ")";
  return 0;
}

Scenario parseScenarioFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::ostringstream Buf;
  Buf << In.rdbuf();
  ScenarioParseResult PR = parseScenario(Buf.str());
  EXPECT_TRUE(PR.ok()) << Path << ": " << PR.Error;
  return std::move(*PR.Parsed);
}

} // namespace

// ---------------------------------------------------------------------------
// Reachable family: cross-validation against core/Mover's enumeration,
// and minimal-witness reconstruction.
// ---------------------------------------------------------------------------

TEST(ReachableFamily, MatchesMoverCheckerEnumeration) {
  std::vector<std::unique_ptr<SequentialSpec>> Specs;
  Specs.push_back(std::make_unique<RegisterSpec>("mem", 1, 2));
  Specs.push_back(std::make_unique<CounterSpec>("c", 2, 3));
  Specs.push_back(std::make_unique<MapSpec>("map", 2, 2));
  for (const auto &Spec : Specs) {
    ReachableFamily F =
        computeReachableFamily(*Spec, Spec->probeOps(), 4096);
    MoverChecker Movers(*Spec);
    EXPECT_TRUE(F.Exact) << Spec->name();
    EXPECT_TRUE(Movers.reachableExact()) << Spec->name();
    EXPECT_EQ(F.Sets.size(), Movers.reachableCount()) << Spec->name();
    // Every member's witness prefix replays to exactly that member.
    for (size_t I = 0; I < F.Sets.size(); ++I) {
      std::vector<Operation> W = witnessPrefix(F, I, Spec->probeOps());
      EXPECT_EQ(Spec->denoteId(W), F.Sets[I]) << Spec->name() << " #" << I;
      EXPECT_LE(W.size(), F.Sets.size()) << "witness longer than BFS depth";
    }
  }
}

TEST(ReachableFamily, BoundedEnumerationIsMarkedInexact) {
  MapSpec Spec("map", 2, 2);
  ReachableFamily F = computeReachableFamily(Spec, Spec.probeOps(), 3);
  EXPECT_FALSE(F.Exact);
  EXPECT_LE(F.Sets.size(), 3u);
  // An inexact family certifies nothing.
  MoverChecker Movers(Spec);
  CommutativityAnalysis A(Spec, Movers, 3);
  for (size_t I = 0; I < A.probes().size(); ++I)
    for (size_t J = I; J < A.probes().size(); ++J) {
      PairCertificate Cert;
      EXPECT_FALSE(A.stronglyCommutes(I, J, &Cert));
      EXPECT_NE(Cert.Kind, CertKind::StrongDiamond);
    }
}

// ---------------------------------------------------------------------------
// Certificates: acceptance, independent re-verification, and tamper
// rejection.
// ---------------------------------------------------------------------------

TEST(Certificates, StrongDiamondVerifiesAndTamperingIsRejected) {
  CounterSpec Spec("c", 2, 3);
  MoverChecker Movers(Spec);
  CommutativityAnalysis A(Spec, Movers);
  const std::vector<Operation> &P = A.probes();
  size_t I0 = probeIdx(P, "inc", 0), I1 = probeIdx(P, "inc", 1);

  PairVerdict V = A.classify(I0, I1);
  ASSERT_TRUE(V.Strong) << "distinct counters must strongly commute";
  ASSERT_EQ(V.Cert.Kind, CertKind::StrongDiamond);
  EXPECT_GT(A.certChecks(), 0u);
  EXPECT_TRUE(
      verifyStrongCertificate(Spec, P[I0], P[I1], P, V.Cert).Ok);

  // Tamper 1: drop the initial denotation from the family.
  {
    PairCertificate T = V.Cert;
    T.Family.erase(std::find(T.Family.begin(), T.Family.end(),
                             Spec.initialId()));
    EXPECT_FALSE(verifyStrongCertificate(Spec, P[I0], P[I1], P, T).Ok);
  }
  // Tamper 2: drop a non-initial member (closure must now fail).
  {
    PairCertificate T = V.Cert;
    ASSERT_GT(T.Family.size(), 1u);
    T.Family.pop_back();
    EXPECT_FALSE(verifyStrongCertificate(Spec, P[I0], P[I1], P, T).Ok);
  }
  // Tamper 3: break the sortedness invariant.
  {
    PairCertificate T = V.Cert;
    ASSERT_GT(T.Family.size(), 1u);
    std::swap(T.Family.front(), T.Family.back());
    EXPECT_FALSE(verifyStrongCertificate(Spec, P[I0], P[I1], P, T).Ok);
  }
  // Tamper 4: relabel the certificate kind.
  {
    PairCertificate T = V.Cert;
    T.Kind = CertKind::Counterexample;
    EXPECT_FALSE(verifyStrongCertificate(Spec, P[I0], P[I1], P, T).Ok);
    // ...and as a counterexample it must ALSO fail: its (empty) witness
    // reaches the initial state, where this pair's diamond closes.
    T.Witness.clear();
    EXPECT_FALSE(verifyCounterexample(Spec, P[I0], P[I1], T).Ok);
  }
}

TEST(Certificates, CounterexampleReplaysAndFabricationIsRejected) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  CommutativityAnalysis A(Spec, Movers);
  const std::vector<Operation> &P = A.probes();
  // write(0, 0) vs write(0, 1): last writer wins, the two orders denote
  // different states everywhere.
  size_t W0 = 0, W1 = 0;
  bool Found0 = false;
  for (size_t I = 0; I < P.size(); ++I)
    if (P[I].Call.Method == "write" && P[I].Call.Args[0] == 0) {
      if (!Found0 && P[I].Call.Args[1] == 0) {
        W0 = I;
        Found0 = true;
      } else if (P[I].Call.Args[1] == 1) {
        W1 = I;
      }
    }
  ASSERT_TRUE(Found0);

  PairVerdict V = A.classify(W0, W1);
  EXPECT_FALSE(V.Strong);
  ASSERT_EQ(V.Cert.Kind, CertKind::Counterexample);
  EXPECT_TRUE(verifyCounterexample(Spec, P[W0], P[W1], V.Cert).Ok);

  // A fabricated counterexample for a genuinely commuting pair must be
  // rejected whatever its witness claims.
  CounterSpec CSpec("c", 2, 3);
  MoverChecker CMovers(CSpec);
  CommutativityAnalysis CA(CSpec, CMovers);
  const std::vector<Operation> &CP = CA.probes();
  size_t I0 = probeIdx(CP, "inc", 0), I1 = probeIdx(CP, "inc", 1);
  PairCertificate Fake;
  Fake.Kind = CertKind::Counterexample;
  EXPECT_FALSE(verifyCounterexample(CSpec, CP[I0], CP[I1], Fake).Ok);
  Fake.Witness = {CP[I0], CP[I0], CP[I1]};
  EXPECT_FALSE(verifyCounterexample(CSpec, CP[I0], CP[I1], Fake).Ok);
}

// ---------------------------------------------------------------------------
// Property: Strong never contradicts the Definition 4.1 verdicts, and
// strong pairs commute dynamically on fuzzed probe logs.
// ---------------------------------------------------------------------------

TEST(CommutProperty, StrongImpliesBothDirectionsMovable) {
  std::vector<std::unique_ptr<SequentialSpec>> Specs;
  Specs.push_back(std::make_unique<RegisterSpec>("mem", 2, 2));
  Specs.push_back(std::make_unique<CounterSpec>("c", 2, 3));
  Specs.push_back(std::make_unique<MapSpec>("map", 2, 2));
  for (const auto &Spec : Specs) {
    MoverChecker Movers(*Spec);
    MoverTable T = MoverTable::build(*Spec, Movers);
    ASSERT_TRUE(T.familyExact()) << Spec->name();
    MoverChecker Fresh(*Spec);
    for (const MoverTable::Entry &E : T.entries()) {
      const Operation &A = T.probes()[E.AIdx], &B = T.probes()[E.BIdx];
      if (!E.V.Strong) {
        // Non-strong verdicts carry a replayable refutation or an
        // informative grade — never a diamond.
        EXPECT_NE(E.V.Cert.Kind, CertKind::StrongDiamond) << Spec->name();
        continue;
      }
      // Strong commutation is state-set *equality* in both orders; the
      // precongruence (refinement) verdict can then never be a firm No.
      std::string Tag = Spec->name() + ": " + A.toString() + " x " +
                        B.toString();
      EXPECT_NE(Fresh.leftMoverSemantic(A, B), Tri::No) << Tag;
      EXPECT_NE(Fresh.leftMoverSemantic(B, A), Tri::No) << Tag;
      EXPECT_EQ(E.V.Cert.Kind, CertKind::StrongDiamond) << Tag;
    }
  }
}

TEST(CommutProperty, StrongPairsCommuteOnFuzzedLogs) {
  MapSpec Spec("map", 2, 2);
  MoverChecker Movers(Spec);
  CommutativityAnalysis A(Spec, Movers);
  const std::vector<Operation> &P = A.probes();

  std::vector<std::pair<size_t, size_t>> StrongPairs;
  for (size_t I = 0; I < P.size(); ++I)
    for (size_t J = I; J < P.size(); ++J)
      if (A.stronglyCommutes(I, J, nullptr))
        StrongPairs.push_back({I, J});
  ASSERT_FALSE(StrongPairs.empty());

  // Fixed-seed random walks through the probe alphabet; at every reached
  // denotation, every strong pair's diamond must close.
  std::mt19937 Rng(20260808);
  std::uniform_int_distribution<size_t> PickOp(0, P.size() - 1);
  for (int Walk = 0; Walk < 64; ++Walk) {
    StateSetId S = Spec.initialId();
    for (int Step = 0; Step < 5; ++Step) {
      StateSetId Next = Spec.applyOpId(S, P[PickOp(Rng)]);
      if (Next == StateTable::EmptySetId)
        continue;
      S = Next;
      for (const auto &[I, J] : StrongPairs) {
        StateSetId SA = Spec.applyOpId(S, P[I]);
        StateSetId SB = Spec.applyOpId(S, P[J]);
        StateSetId AB = Spec.applyOpId(SA, P[J]);
        StateSetId BA = Spec.applyOpId(SB, P[I]);
        EXPECT_EQ(AB, BA) << P[I].toString() << " x " << P[J].toString();
        if (SA != StateTable::EmptySetId && SB != StateTable::EmptySetId)
          EXPECT_NE(AB, StateTable::EmptySetId)
              << P[I].toString() << " x " << P[J].toString();
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Method-pair summaries: the argument predicates the table is named for.
// ---------------------------------------------------------------------------

TEST(MoverTables, SummariesRecoverArgumentPredicates) {
  {
    CounterSpec Spec("c", 2, 3);
    MoverChecker Movers(Spec);
    MoverTable T = MoverTable::build(Spec, Movers);
    bool FoundIncInc = false;
    for (const MethodPairSummary &S : T.summaries())
      if (S.MethodA == "inc" && S.MethodB == "inc") {
        FoundIncInc = true;
        // Modular increments never block and always commute.
        EXPECT_EQ(S.Pred, PairPredicate::Always) << toString(S.Pred);
      }
    EXPECT_TRUE(FoundIncInc);
  }
  {
    MapSpec Spec("map", 2, 2);
    MoverChecker Movers(Spec);
    MoverTable T = MoverTable::build(Spec, Movers);
    bool FoundPutPut = false, FoundPutGet = false;
    for (const MethodPairSummary &S : T.summaries()) {
      if (S.MethodA == "put" && S.MethodB == "put") {
        FoundPutPut = true;
        // The headline refinement: distinct keys suffice to commute,
        // same-key puts (with compatible observations) do not.
        EXPECT_EQ(S.Pred, PairPredicate::DistinctArg0) << toString(S.Pred);
        EXPECT_GT(S.StrongPairs, 0u);
        EXPECT_LT(S.StrongPairs, S.TotalPairs);
      }
      if ((S.MethodA == "get" && S.MethodB == "put") ||
          (S.MethodA == "put" && S.MethodB == "get")) {
        FoundPutGet = true;
        EXPECT_EQ(S.Pred, PairPredicate::DistinctArg0) << toString(S.Pred);
      }
    }
    EXPECT_TRUE(FoundPutPut);
    EXPECT_TRUE(FoundPutGet);
    EXPECT_GT(T.certChecks(), 0u);
  }
}

// ---------------------------------------------------------------------------
// The oracle facade: key lookup, hit/miss counters, program coverage.
// ---------------------------------------------------------------------------

TEST(CommutativityOracleDB, AnswersByOpKeyAndCountsHitsMisses) {
  CounterSpec Spec("c", 2, 3);
  CommutativityDB DB(Spec);
  const std::vector<Operation> &P = DB.probes();
  size_t I0 = probeIdx(P, "inc", 0), I1 = probeIdx(P, "inc", 1);
  OpKeyId K0 = Spec.table().opKey(P[I0]);
  OpKeyId K1 = Spec.table().opKey(P[I1]);

  EXPECT_TRUE(DB.stronglyCommute(K0, K1));
  EXPECT_TRUE(DB.stronglyCommute(K1, K0)) << "must be symmetric";
  EXPECT_EQ(DB.tableHits(), 2u);
  EXPECT_GT(DB.certChecks(), 0u);

  // An op key that is not a probe instance answers false and counts a
  // miss (sound default).
  Operation Foreign;
  Foreign.Call = {"c", "add", {0, 2}};
  OpKeyId KF = Spec.table().opKey(Foreign);
  EXPECT_FALSE(DB.stronglyCommute(K0, KF));
  EXPECT_EQ(DB.tableMisses(), 1u);

  PairCertificate Cert;
  EXPECT_TRUE(DB.certificate(K0, K1, Cert));
  EXPECT_EQ(Cert.Kind, CertKind::StrongDiamond);
  EXPECT_FALSE(DB.certificate(K0, 999999, Cert));
}

TEST(CommutativityOracleDB, CoversProgramChecksTheCallSurface) {
  MapSpec Spec("map", 2, 2);
  CommutativityDB DB(Spec);
  std::string Why;

  std::vector<std::vector<CodePtr>> Covered = {
      {parseOrDie("tx { a := map.put(0, 1) }")},
      {parseOrDie("tx { b := map.get(1); c := map.remove(0) }")}};
  EXPECT_TRUE(DB.coversProgram(Covered, &Why)) << Why;

  std::vector<std::vector<CodePtr>> VariableArg = {
      {parseOrDie("tx { a := map.get(0); b := map.put(a, 1) }")}};
  EXPECT_FALSE(DB.coversProgram(VariableArg, &Why));
  EXPECT_NE(Why.find("non-literal"), std::string::npos) << Why;

  std::vector<std::vector<CodePtr>> OutOfRange = {
      {parseOrDie("tx { a := map.put(7, 1) }")}};
  EXPECT_FALSE(DB.coversProgram(OutOfRange, &Why));
  EXPECT_NE(Why.find("no probe instance"), std::string::npos) << Why;
}

// ---------------------------------------------------------------------------
// The whole-program prover, on the shipped scenario pair and on the
// out-of-scope cases.
// ---------------------------------------------------------------------------

#ifdef PUSHPULL_SCENARIOS_DIR

TEST(Prover, ProvesDistinctAccountsRejectsSharedAccount) {
  {
    Scenario S = parseScenarioFile(std::string(PUSHPULL_SCENARIOS_DIR) +
                                   "/bank_boosted_distinct.pp");
    CommutativityDB DB(*S.Spec, S.Movers.MaxReachableSets);
    ProveResult R = proveSerializable(S, DB);
    EXPECT_EQ(R.V, ProveResult::Verdict::Proved) << R.Detail;
    EXPECT_GT(R.PairsChecked, 0u);
    EXPECT_GT(R.Instances, 0u);
    EXPECT_GT(DB.certChecks(), 0u)
        << "a proof without certificate checks proves nothing";
  }
  {
    Scenario S = parseScenarioFile(std::string(PUSHPULL_SCENARIOS_DIR) +
                                   "/bank_boosted_conflict.pp");
    CommutativityDB DB(*S.Spec, S.Movers.MaxReachableSets);
    ProveResult R = proveSerializable(S, DB);
    EXPECT_EQ(R.V, ProveResult::Verdict::Conflict) << R.Detail;
    // The minimal conflicting pair: the shared account's deposit x
    // balance read.
    EXPECT_NE(R.PairA.find("deposit(0"), std::string::npos) << R.PairA;
    EXPECT_NE(R.PairB.find("balance(0"), std::string::npos) << R.PairB;
  }
  {
    // The original bank_boosted.pp uses withdraw amounts outside the
    // probe alphabet (and transfer, which has no probes at all).
    Scenario S = parseScenarioFile(std::string(PUSHPULL_SCENARIOS_DIR) +
                                   "/bank_boosted.pp");
    CommutativityDB DB(*S.Spec, S.Movers.MaxReachableSets);
    ProveResult R = proveSerializable(S, DB);
    EXPECT_EQ(R.V, ProveResult::Verdict::Unproved) << R.Detail;
  }
}

TEST(Prover, FaultInjectionAndVariableArgsAreOutOfScope) {
  Scenario S = parseScenarioFile(std::string(PUSHPULL_SCENARIOS_DIR) +
                                 "/bank_boosted_distinct.pp");
  CommutativityDB DB(*S.Spec, S.Movers.MaxReachableSets);
  S.DisabledCriterion = "PUSH criterion (ii)";
  ProveResult R = proveSerializable(S, DB);
  EXPECT_EQ(R.V, ProveResult::Verdict::Unproved);
  EXPECT_NE(R.Detail.find("fault injection"), std::string::npos) << R.Detail;
}

#endif // PUSHPULL_SCENARIOS_DIR

// ---------------------------------------------------------------------------
// SkipOracle: with a whole-program proof in hand, skipping the explorer's
// per-terminal serializability replay changes nothing but the work done.
// ---------------------------------------------------------------------------

TEST(Prover, SkipOracleIsObservationallyEquivalent) {
  MapSpec Spec("map", 2, 2);
  MoverChecker Movers(Spec);
  CommutativityDB DB(Spec);
  std::vector<std::vector<CodePtr>> Ps = {
      {parseOrDie("tx { a := map.put(0, 1) }")},
      {parseOrDie("tx { b := map.put(1, 1) }")}};
  std::string Why;
  ASSERT_TRUE(DB.coversProgram(Ps, &Why)) << Why;

  auto Run = [&](bool Skip, unsigned Threads) {
    ExplorerConfig EC;
    EC.Reduce = Reduction::Sleep;
    EC.Threads = Threads;
    EC.CommutDB = &DB;
    EC.SkipOracle = Skip;
    Explorer E(Spec, Movers, EC);
    return E.explore(Ps);
  };
  for (unsigned Threads : {1u, 4u}) {
    ExplorerReport Full = Run(false, Threads);
    ExplorerReport Skip = Run(true, Threads);
    ASSERT_FALSE(Full.Truncated);
    ASSERT_FALSE(Skip.Truncated);
    EXPECT_TRUE(Full.clean()) << Full.FirstFailure;
    EXPECT_TRUE(Skip.clean()) << Skip.FirstFailure;
    EXPECT_EQ(Skip.ConfigsVisited, Full.ConfigsVisited);
    EXPECT_EQ(Skip.TerminalConfigs, Full.TerminalConfigs);
    EXPECT_EQ(Full.OracleSkips, 0u);
    EXPECT_EQ(Skip.OracleSkips, Skip.TerminalConfigs);
  }
}

// ---------------------------------------------------------------------------
// canonicalGOrder: the trace normal form the configuration-key quotient
// renders the global log in.
// ---------------------------------------------------------------------------

namespace {

/// Oracle for unit tests: strong commutation is membership of an explicit
/// unordered pair set.
class FixedOracle : public CommutativityOracle {
public:
  void allow(uint32_t A, uint32_t B) {
    Pairs.push_back({std::min(A, B), std::max(A, B)});
  }
  bool stronglyCommute(OpKeyId A, OpKeyId B) const override {
    uint32_t Lo = std::min(A, B), Hi = std::max(A, B);
    for (const auto &P : Pairs)
      if (P.first == Lo && P.second == Hi)
        return true;
    return false;
  }

private:
  std::vector<std::pair<uint32_t, uint32_t>> Pairs;
};

} // namespace

TEST(CanonicalGOrder, SortsIndependentEntriesKeepsDependentOrder) {
  FixedOracle DB;
  DB.allow(10, 20);

  // Independent (different owners, commuting keys): both input orders
  // normalize to the same canonical sequence.
  {
    GKeyView Fwd[2] = {{20, 'C', 1}, {10, 'C', 0}};
    GKeyView Rev[2] = {{10, 'C', 0}, {20, 'C', 1}};
    SmallVec<uint32_t, 16> OF, OR;
    canonicalGOrder(Fwd, 2, DB, OF);
    canonicalGOrder(Rev, 2, DB, OR);
    ASSERT_EQ(OF.size(), 2u);
    EXPECT_EQ(Fwd[OF[0]].OpKey, 10u);
    EXPECT_EQ(Fwd[OF[1]].OpKey, 20u);
    EXPECT_EQ(Rev[OR[0]].OpKey, 10u);
    EXPECT_EQ(Rev[OR[1]].OpKey, 20u);
  }
  // Same owner: dependent regardless of the oracle; program order wins.
  {
    GKeyView In[2] = {{20, 'C', 0}, {10, 'C', 0}};
    SmallVec<uint32_t, 16> O;
    canonicalGOrder(In, 2, DB, O);
    EXPECT_EQ(In[O[0]].OpKey, 20u);
    EXPECT_EQ(In[O[1]].OpKey, 10u);
  }
  // Non-commuting keys across owners: also dependent.
  {
    GKeyView In[2] = {{30, 'C', 1}, {10, 'C', 0}};
    SmallVec<uint32_t, 16> O;
    canonicalGOrder(In, 2, DB, O);
    EXPECT_EQ(In[O[0]].OpKey, 30u);
    EXPECT_EQ(In[O[1]].OpKey, 10u);
  }
  // A dependent chain pins an otherwise-minimal entry behind it.
  {
    // 30(owner 2) then 10(owner 0): dependent (no pair allowed).  20 is
    // independent of both? 20 only commutes with 10, so 30 x 20 is
    // dependent too: order must be exactly input order 30, 20, 10...
    // except 20 x 30: not allowed -> dependent.  Verify full normal form
    // emits a permutation.
    GKeyView In[3] = {{30, 'C', 2}, {20, 'C', 1}, {10, 'C', 0}};
    SmallVec<uint32_t, 16> O;
    canonicalGOrder(In, 3, DB, O);
    ASSERT_EQ(O.size(), 3u);
    bool Seen[3] = {false, false, false};
    for (uint32_t I : O) {
      ASSERT_LT(I, 3u);
      Seen[I] = true;
    }
    EXPECT_TRUE(Seen[0] && Seen[1] && Seen[2]);
    // 30 and 20 are dependent, 30 before 20 stays; 10 and 20 commute but
    // 10 x 30 does not, so 10 stays after 30.
    EXPECT_EQ(In[O[0]].OpKey, 30u);
  }
}
