//===- tests/TestUtil.h - Shared test helpers -------------------*- C++ -*-===//

#ifndef PUSHPULL_TESTS_TESTUTIL_H
#define PUSHPULL_TESTS_TESTUTIL_H

#include "core/Mover.h"
#include "core/Op.h"
#include "core/Spec.h"

#include <string>
#include <vector>

namespace pushpull {
namespace testutil {

/// Build an operation record with explicit id.
inline Operation mkOp(OpId Id, const std::string &Obj,
                      const std::string &Mth, std::vector<Value> Args = {},
                      std::optional<Value> Result = std::nullopt) {
  Operation O;
  O.Call = {Obj, Mth, std::move(Args)};
  O.Result = Result;
  O.Id = Id;
  return O;
}

/// Cross-validate a spec's leftMoverHint against the semantic decision
/// procedure on every ordered pair of probe operations.  Returns the list
/// of disagreements rendered as strings (empty = sound and, where the
/// hint answers, exact).
inline std::vector<std::string> hintDisagreements(const SequentialSpec &S) {
  std::vector<std::string> Out;
  MoverChecker Movers(S);
  std::vector<Operation> Probes = S.probeOps();
  for (const Operation &A : Probes)
    for (const Operation &B : Probes) {
      Tri Hint = S.leftMoverHint(A, B);
      if (Hint == Tri::Unknown)
        continue;
      Tri Sem = Movers.leftMoverSemantic(A, B);
      if (Sem == Tri::Unknown)
        continue; // Semantic engine hit a bound; nothing to compare.
      if (Hint != Sem)
        Out.push_back(A.toString() + " <| " + B.toString() + ": hint=" +
                      toString(Hint) + " semantic=" + toString(Sem));
    }
  return Out;
}

} // namespace testutil
} // namespace pushpull

#endif // PUSHPULL_TESTS_TESTUTIL_H
