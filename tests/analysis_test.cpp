//===- tests/analysis_test.cpp - Static analysis battery ----------------------===//
//
// The ppcheck subsystem is itself held to proof: the criterion audit must
// pass every shipped engine surface and convict every injectable
// criterion with a witness that round-trips through the scenario parser;
// the independence audit must agree with the dynamic fuzzed-commutation
// evidence of reduction_test.cpp; and the linter must be clean over the
// shipped scenarios while firing exactly once per golden broken program.
//
//===----------------------------------------------------------------------===//

#include "analysis/IndependenceAudit.h"
#include "analysis/Lint.h"
#include "analysis/Obligations.h"

#include "fuzz/Generator.h"
#include "sim/Scenario.h"
#include "spec/CounterSpec.h"
#include "spec/RegisterSpec.h"
#include "tm/Engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <random>
#include <string>
#include <vector>

using namespace pushpull;

namespace {

std::shared_ptr<RegisterSpec> regSpec() {
  return std::make_shared<RegisterSpec>("mem", 1, 2);
}
std::shared_ptr<CounterSpec> cntSpec() {
  return std::make_shared<CounterSpec>("c", 1, 2);
}

/// Instantiate a scenario engine over a throwaway machine and read off
/// its effective rule surface.
std::pair<uint32_t, bool> surfaceOf(const std::string &Name) {
  auto Spec = regSpec();
  MoverChecker Movers(*Spec);
  PushPullMachine M(*Spec, Movers);
  M.addThread({call("mem", "read", {Value(0)})});
  std::string Error;
  std::unique_ptr<TMEngine> E = makeEngine(Name, {}, M, Error);
  EXPECT_TRUE(E) << Name << ": " << Error;
  if (!E)
    return {0, false};
  return {E->ruleMask(), E->pullsUncommitted()};
}

} // namespace

// ---------------------------------------------------------------------------
// Engine rule surfaces: the static claims each engine header makes.
// ---------------------------------------------------------------------------

TEST(EngineSurfaces, MatchTheAlgorithms) {
  const uint32_t All = allRulesMask();
  const uint32_t NoUnPush = All & ~ruleBit(RuleKind::UnPush);
  const uint32_t Forward = All & ~(ruleBit(RuleKind::UnApp) |
                                   ruleBit(RuleKind::UnPull));
  struct Expect {
    const char *Name;
    uint32_t Mask;
    bool Uncommitted;
  };
  const Expect Table[] = {
      {"optimistic", NoUnPush, false},  {"checkpoint", NoUnPush, false},
      {"irrevocable", NoUnPush, false}, {"pessimistic", Forward, false},
      {"boosting", All, false},         {"early-release", All, false},
      {"htm", All, false},              {"htm-word", All, false},
      {"hybrid", All, false},           {"dependent", All, true},
  };
  // The table must cover exactly the scenario engine names.
  std::vector<std::string> Names = allEngineNames();
  ASSERT_EQ(Names.size(), std::size(Table));
  for (const Expect &E : Table) {
    ASSERT_NE(std::find(Names.begin(), Names.end(), E.Name), Names.end())
        << E.Name;
    auto [Mask, Uncommitted] = surfaceOf(E.Name);
    EXPECT_EQ(Mask, E.Mask) << E.Name;
    EXPECT_EQ(Uncommitted, E.Uncommitted) << E.Name;
  }
}

// ---------------------------------------------------------------------------
// Positive criterion audit: every distinct engine surface, two specs.
// ---------------------------------------------------------------------------

TEST(CriterionAudit, EveryEngineSurfaceIsCleanOnRegister) {
  auto Reg = regSpec();
  // The audit depends on the engine only through (mask, uncommitted);
  // auditing the distinct surfaces covers all ten engines (the grouping
  // itself is pinned by EngineSurfaces.MatchTheAlgorithms).
  struct Surface {
    const char *Label;
    uint32_t Mask;
    bool Uncommitted;
  };
  const uint32_t All = allRulesMask();
  const Surface Surfaces[] = {
      {"optimistic", All & ~ruleBit(RuleKind::UnPush), false},
      {"pessimistic",
       All & ~(ruleBit(RuleKind::UnApp) | ruleBit(RuleKind::UnPull)), false},
      {"boosting", All, false},
      {"dependent", All, true},
  };
  for (const Surface &S : Surfaces) {
    CriterionAuditConfig C;
    C.Spec = Reg.get();
    C.SpecLine = "spec register name=mem regs=1 vals=2";
    C.EngineName = S.Label;
    C.RuleMask = S.Mask;
    C.PullsUncommitted = S.Uncommitted;
    CriterionAuditReport R = auditCriteria(C);
    EXPECT_GT(R.ShapesAudited, 1000u) << S.Label;
    EXPECT_GT(R.ProbesRun, 10000u) << S.Label;
    EXPECT_TRUE(R.clean())
        << S.Label << ": unsound=" << R.Unsound.size()
        << " incomplete=" << R.Incomplete.size()
        << (R.Unsound.empty() ? ""
                              : "\n" + R.Unsound[0].describe(R.Alphabet));
  }
}

TEST(CriterionAudit, FullSurfaceIsCleanOnCounter) {
  auto Cnt = cntSpec();
  CriterionAuditConfig C;
  C.Spec = Cnt.get();
  C.SpecLine = "spec counter name=c counters=1 mod=2";
  CriterionAuditReport R = auditCriteria(C);
  EXPECT_GT(R.ShapesAudited, 1000u);
  EXPECT_TRUE(R.clean()) << "unsound=" << R.Unsound.size()
                         << " incomplete=" << R.Incomplete.size();
}

TEST(CriterionAudit, GrayCriteriaOffIsAlsoClean) {
  // UNPUSH (i) and PULL (iii) are "not strictly necessary" (paper §5);
  // the machine must stay criteria-sound with them off, too.
  auto Reg = regSpec();
  CriterionAuditConfig C;
  C.Spec = Reg.get();
  C.SpecLine = "spec register name=mem regs=1 vals=2";
  C.EnforceGray = false;
  CriterionAuditReport R = auditCriteria(C);
  EXPECT_TRUE(R.clean()) << "unsound=" << R.Unsound.size()
                         << " incomplete=" << R.Incomplete.size();
}

// ---------------------------------------------------------------------------
// Negative battery: every injectable criterion convicted, witnesses
// round-trip through the scenario parser and carry the injection.
// ---------------------------------------------------------------------------

TEST(NegativeBattery, EveryInjectionIsConvictedWithParseableWitness) {
  ShapeScope Scope;
  std::vector<ConvictionResult> Results = runNegativeBattery(Scope);
  ASSERT_EQ(Results.size(), injectableCriteria().size());
  for (const ConvictionResult &R : Results) {
    EXPECT_TRUE(R.Convicted) << R.Criterion;
    if (!R.Convicted)
      continue;
    // The masking theorem (DESIGN.md §13): UNPUSH (ii) is only
    // observable with gray criteria off; everything else convicts with
    // the full criteria set enforced.
    EXPECT_EQ(R.EnforcedGray, R.Criterion != "UNPUSH criterion (ii)")
        << R.Criterion;
    // The divergence is an unsoundness (machine fired, criteria forbid).
    EXPECT_TRUE(R.Witness.MachineApplied) << R.Criterion;
    EXPECT_FALSE(R.Witness.Witness.empty()) << R.Criterion;

    // Round-trip: the witness is a parseable scenario that reproduces
    // the injection, the spec, and one transaction per shape thread.
    ScenarioParseResult P = parseScenario(R.Witness.Witness);
    ASSERT_TRUE(P.ok()) << R.Criterion << " line " << P.ErrorLine << ": "
                        << P.Error << "\n"
                        << R.Witness.Witness;
    EXPECT_EQ(P.Parsed->DisabledCriterion, R.Criterion);
    EXPECT_TRUE(P.Parsed->Spec) << R.Criterion;
    EXPECT_EQ(P.Parsed->Threads.size(), Scope.Threads) << R.Criterion;

    // And the linter accepts it apart from intentional skip-only filler
    // transactions (witness shapes routinely leave a thread idle).
    LintReport L = lintScenarioText("witness.pp", R.Witness.Witness);
    EXPECT_EQ(L.errors(), 0u) << R.Criterion << "\n"
                              << L.render() << R.Witness.Witness;
    for (const LintDiag &D : L.Diags)
      EXPECT_EQ(D.Check, "empty-transaction") << R.Criterion;
  }
}

TEST(NegativeBattery, ConvictionsAreMinimalWithinScope) {
  // Smallest-first enumeration: no well-formed shape with fewer entries
  // than the reported witness convicts the same injection.  Spot-check
  // the cheapest conviction (PUSH (i)) by re-auditing with the shape
  // budget cut to the sizes below the witness.
  ShapeScope Scope;
  std::vector<ConvictionResult> Results = runNegativeBattery(Scope);
  const ConvictionResult *PushI = nullptr;
  for (const ConvictionResult &R : Results)
    if (R.Criterion == "PUSH criterion (i)")
      PushI = &R;
  ASSERT_NE(PushI, nullptr);
  ASSERT_TRUE(PushI->Convicted);
  size_t WitnessSize = PushI->Witness.Shape.entryCount();
  EXPECT_GE(WitnessSize, 2u); // one unpushed op can always push
  auto Reg = regSpec();
  CriterionAuditConfig C;
  C.Spec = Reg.get();
  C.SpecLine = "spec register name=mem regs=1 vals=2";
  C.DisabledCriterion = "PUSH criterion (i)";
  C.Scope = Scope;
  // Restrict to strictly smaller shapes via the per-thread caps.
  C.Scope.MaxGlobal = 0;
  C.Scope.MaxLocalSubject = static_cast<unsigned>(WitnessSize) - 1;
  C.Scope.MaxLocalOther = 0;
  CriterionAuditReport R = auditCriteria(C);
  EXPECT_TRUE(R.Unsound.empty())
      << "a smaller conviction exists; enumeration is not smallest-first";
}

// ---------------------------------------------------------------------------
// Independence audit.
// ---------------------------------------------------------------------------

TEST(IndependenceAudit, ShapeDomainIsClean) {
  auto Reg = regSpec();
  IndependenceAuditConfig C;
  C.Spec = Reg.get();
  // Trim the scope a little: the full default runs ~90k shapes, which
  // is ppcheck's job; the test pins the result on a meaningful core.
  C.Scope.MaxGlobal = 2;
  C.Scope.MaxLocalSubject = 2;
  C.Scope.MaxLocalOther = 1;
  IndependenceAuditReport R = auditIndependence(C);
  EXPECT_GT(R.ShapesAudited, 1000u);
  EXPECT_GT(R.PairsChecked, 10000u);
  EXPECT_TRUE(R.clean()) << (R.Violations.empty()
                                 ? std::string()
                                 : R.Violations[0].Reason + " at " +
                                       R.Violations[0].Shape.describe(
                                           R.Alphabet));
}

TEST(IndependenceAudit, AgreesWithFuzzedReachableConfigurations) {
  // The same checker reduction_test exercises dynamically: random-walk
  // real machines from fuzzed programs and run the shared
  // checkIndependenceAt at every stop.  The static audit and the
  // dynamic battery must tell the same story (zero violations).
  GeneratorConfig GC;
  GC.Seed = 20260808;
  GC.MaxThreads = 3;
  GC.MaxTxPerThread = 1;
  GC.MaxOpsPerTx = 2;
  GC.SpecKinds = {"register", "counter", "set"};
  Generator Gen(GC);

  std::mt19937_64 Rng(11);
  size_t TotalPairs = 0;
  std::vector<std::string> Failures;
  for (int CaseIdx = 0; CaseIdx < 12; ++CaseIdx) {
    FuzzCase C = Gen.next();
    std::string Error;
    std::shared_ptr<const SequentialSpec> Spec = C.buildSpec(Error);
    ASSERT_TRUE(Spec) << Error;
    MoverChecker Movers(*Spec);
    PushPullMachine M(*Spec, Movers);
    for (const auto &P : C.Threads)
      M.addThread(P);
    for (int Step = 0; Step < 8; ++Step) {
      TotalPairs += checkIndependenceAt(M, Failures, /*MaxPairs=*/60);
      std::vector<Candidate> Cands = allCandidates(M);
      std::shuffle(Cands.begin(), Cands.end(), Rng);
      bool Advanced = false;
      for (const Candidate &Next : Cands) {
        PushPullMachine N = M;
        if (applyFiring(N, Next.F)) {
          M = std::move(N);
          Advanced = true;
          break;
        }
      }
      if (!Advanced)
        break;
    }
  }
  EXPECT_GT(TotalPairs, 200u);
  EXPECT_TRUE(Failures.empty()) << Failures.front();
}

// ---------------------------------------------------------------------------
// Linter: shipped scenarios are clean; goldens fire one check each.
// ---------------------------------------------------------------------------

TEST(Lint, ShippedScenariosAreClean) {
  namespace fs = std::filesystem;
  size_t Files = 0;
  for (const auto &Entry :
       fs::recursive_directory_iterator(PUSHPULL_SCENARIOS_DIR)) {
    if (!Entry.is_regular_file() || Entry.path().extension() != ".pp")
      continue;
    ++Files;
    LintReport R = lintScenarioFile(Entry.path().string());
    EXPECT_TRUE(R.clean()) << Entry.path() << "\n" << R.render();
  }
  EXPECT_GE(Files, 15u);
}

namespace {

struct LintGolden {
  const char *Check;
  LintSeverity Severity;
  const char *Text;
};

constexpr const char *kRegSpec = "spec register name=mem regs=1 vals=2\n";
constexpr const char *kCntSpec = "spec counter name=c counters=1 mod=2\n";

const LintGolden kGoldens[] = {
    {"parse-error", LintSeverity::Error,
     "spec register name=mem regs=1 vals=2\n"
     "thread tx { mem.read(0) \n"}, // unclosed transaction body
    {"unknown-engine", LintSeverity::Error,
     "spec register name=mem regs=1 vals=2\n"
     "engine speculative\n"
     "thread tx { mem.write(0, 1) }\n"},
    {"unknown-check", LintSeverity::Error,
     "spec register name=mem regs=1 vals=2\n"
     "thread tx { mem.write(0, 1) }\n"
     "check linearizability\n"},
    {"unknown-inject", LintSeverity::Error,
     "spec register name=mem regs=1 vals=2\n"
     "inject PUSH criterion (ix)\n"
     "thread tx { mem.write(0, 1) }\n"},
    {"unknown-object", LintSeverity::Error,
     "spec register name=mem regs=1 vals=2\n"
     "thread tx { disk.write(0, 1) }\n"},
    {"unknown-method", LintSeverity::Error,
     "spec register name=mem regs=1 vals=2\n"
     "thread tx { mem.swap(0, 1) }\n"},
    {"arity-mismatch", LintSeverity::Error,
     "spec register name=mem regs=1 vals=2\n"
     "thread tx { mem.read(0, 1) }\n"},
    {"void-result-binding", LintSeverity::Error,
     "spec counter name=c counters=1 mod=2\n"
     "thread tx { v := c.inc(0) }\n"},
    {"uninitialized-variable", LintSeverity::Error,
     "spec register name=mem regs=1 vals=2\n"
     "thread tx { mem.write(0, v) }\n"},
    {"empty-transaction", LintSeverity::Warning,
     "spec register name=mem regs=1 vals=2\n"
     "thread tx { skip }\n"},
    {"dead-choice", LintSeverity::Warning,
     "spec register name=mem regs=1 vals=2\n"
     "thread tx { (mem.write(0, 1) + mem.write(0, 1)) }\n"},
    {"dead-loop", LintSeverity::Warning,
     "spec register name=mem regs=1 vals=2\n"
     "thread tx { mem.write(0, 1); (skip)* }\n"},
    {"never-enabled", LintSeverity::Warning,
     "spec register name=mem regs=1 vals=2\n"
     "thread tx { mem.write(0, 7) }\n"}, // value outside vals=2
};

} // namespace

TEST(Lint, GoldensFireTheirCheck) {
  for (const LintGolden &G : kGoldens) {
    LintReport R = lintScenarioText("golden.pp", G.Text);
    ASSERT_FALSE(R.Diags.empty()) << G.Check << " did not fire:\n" << G.Text;
    bool Found = false;
    for (const LintDiag &D : R.Diags) {
      if (D.Check == G.Check) {
        Found = true;
        EXPECT_EQ(D.Severity, G.Severity) << G.Check;
        EXPECT_GT(D.Line, 0u) << G.Check;
        EXPECT_EQ(D.File, "golden.pp") << G.Check;
      }
    }
    EXPECT_TRUE(Found) << G.Check << " missing; got:\n" << R.render();
  }
}

TEST(Lint, DiagnosticsRenderMachineReadably) {
  LintReport R = lintScenarioText(
      "x.pp", "spec register name=mem regs=1 vals=2\nengine warp\n"
              "thread tx { mem.write(0, 1) }\n");
  ASSERT_EQ(R.Diags.size(), 1u);
  EXPECT_EQ(R.Diags[0].render(),
            "x.pp:2: error: [unknown-engine] unknown engine 'warp'");
}
