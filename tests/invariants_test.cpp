//===- tests/invariants_test.cpp - Section 5.3 invariants -------------------===//
//
// The Lemma 5.7-5.13 invariants as runtime checks: they hold at every
// hand-built configuration reached through the rules, along randomized
// engine runs, and the derived precongruence facts hold too.  A
// deliberately corrupted configuration is rejected.
//
//===----------------------------------------------------------------------===//

#include "core/Invariants.h"

#include "TestUtil.h"
#include "lang/Parser.h"
#include "sim/Scheduler.h"
#include "sim/Workload.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"
#include "tm/BoostingTM.h"
#include "tm/OptimisticTM.h"

#include <gtest/gtest.h>

using namespace pushpull;

namespace {

void expectAllInvariants(const PushPullMachine &M, MoverChecker &Movers) {
  for (const ThreadState &Th : M.threads()) {
    InvariantReport R = checkAllInvariants(Th, M.global(), Movers);
    EXPECT_TRUE(R.Holds) << R.Which << ": " << R.Detail;
  }
}

void expectDerivedInvariants(const PushPullMachine &M,
                             PrecongruenceChecker &Pre,
                             const SequentialSpec &Spec) {
  for (const ThreadState &Th : M.threads()) {
    InvariantReport A = checkISlidePushed(Th, M.global(), Pre, Spec);
    EXPECT_TRUE(A.Holds) << A.Which << ": " << A.Detail;
    InvariantReport B = checkIChronPush(Th, M.global(), Pre, Spec);
    EXPECT_TRUE(B.Holds) << B.Which << ": " << B.Detail;
    InvariantReport C = checkILocalReorder(Th, M.global(), Pre, Spec);
    EXPECT_TRUE(C.Holds) << C.Which << ": " << C.Detail;
  }
}

} // namespace

TEST(Invariants, HoldAlongHandBuiltRun) {
  SetSpec Spec("set", 3);
  MoverChecker Movers(Spec);
  PrecongruenceChecker Pre(Spec);
  PushPullMachine M(Spec, Movers);
  TxId T0 = M.addThread({parseOrDie("tx { a := set.add(0); b := set.add(1) }")});
  TxId T1 = M.addThread({parseOrDie("tx { c := set.add(2) }")});
  ASSERT_TRUE(M.beginTx(T0));
  ASSERT_TRUE(M.beginTx(T1));

  auto CheckAll = [&] {
    expectAllInvariants(M, Movers);
    expectDerivedInvariants(M, Pre, Spec);
  };
  CheckAll();
  ASSERT_TRUE(M.app(T0, 0, 0).Applied);
  CheckAll();
  ASSERT_TRUE(M.push(T0, 0).Applied);
  CheckAll();
  ASSERT_TRUE(M.app(T1, 0, 0).Applied);
  CheckAll();
  ASSERT_TRUE(M.push(T1, 0).Applied);
  CheckAll();
  ASSERT_TRUE(M.app(T0, 0, 0).Applied);
  CheckAll();
  ASSERT_TRUE(M.push(T0, 1).Applied);
  CheckAll();
  ASSERT_TRUE(M.commit(T0).Applied);
  CheckAll();
  ASSERT_TRUE(M.commit(T1).Applied);
  CheckAll();
}

TEST(Invariants, ILGDetectsCorruption) {
  SetSpec Spec("set", 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  TxId T = M.addThread({parseOrDie("tx { a := set.add(0) }")});
  ASSERT_TRUE(M.beginTx(T));
  ASSERT_TRUE(M.app(T, 0, 0).Applied);

  // Hand-corrupt a copy of the thread state: claim pushed without a G
  // entry.
  ThreadState Corrupt = M.thread(T);
  Corrupt.L.setKind(0, LocalKind::Pushed);
  InvariantReport R = checkILG(Corrupt, M.global());
  EXPECT_FALSE(R.Holds);
  EXPECT_EQ(R.Which, "I_LG");
}

TEST(Invariants, ILocalOrderDetectsIllegalOutOfOrderPush) {
  // Build a local log where a pushed op follows an unpushed conflicting
  // one — only constructible by bypassing criteria (Trusting mode).  Two
  // same-register writes of different values: the later one cannot move
  // left of the earlier.
  RegisterSpec Spec("mem", 1, 3);
  MoverChecker Movers(Spec);
  MachineConfig MC;
  MC.Level = ValidationLevel::Trusting;
  PushPullMachine M(Spec, Movers, MC);
  TxId T = M.addThread({parseOrDie("tx { mem.write(0, 1); mem.write(0, 2) }")});
  ASSERT_TRUE(M.beginTx(T));
  ASSERT_TRUE(M.app(T, 0, 0).Applied); // write(0,1), npshd
  ASSERT_TRUE(M.app(T, 0, 0).Applied); // write(0,2), npshd
  ASSERT_TRUE(M.push(T, 1).Applied);   // push the second only (illegal).
  InvariantReport R = checkILocalOrder(M.thread(T), Movers);
  EXPECT_FALSE(R.Holds);
  EXPECT_EQ(R.Which, "I_localOrder");
}

TEST(Invariants, ISlideRDetectsCriterionIIViolation) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  MachineConfig MC;
  MC.Level = ValidationLevel::Trusting;
  PushPullMachine M(Spec, Movers, MC);
  TxId T0 = M.addThread({parseOrDie("tx { v := mem.read(0) }")});
  TxId T1 = M.addThread({parseOrDie("tx { mem.write(0, 1) }")});
  ASSERT_TRUE(M.beginTx(T0));
  ASSERT_TRUE(M.beginTx(T1));
  ASSERT_TRUE(M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(M.push(T0, 0).Applied);
  ASSERT_TRUE(M.app(T1, 0, 0).Applied);
  ASSERT_TRUE(M.push(T1, 0).Applied); // Would fail criterion (ii) normally.
  InvariantReport R = checkISlideR(M.thread(T0), M.global(), Movers);
  EXPECT_FALSE(R.Holds);
  EXPECT_EQ(R.Which, "I_slideR");
}

TEST(Invariants, FullModeRunsCleanEngineRun) {
  SetSpec Spec("set", 4);
  MoverChecker Movers(Spec);
  MachineConfig MC;
  MC.Level = ValidationLevel::Full; // Invariants asserted after every rule.
  PushPullMachine M(Spec, Movers, MC);
  WorkloadConfig WC;
  WC.Threads = 3;
  WC.TxPerThread = 2;
  WC.OpsPerTx = 2;
  WC.KeyRange = 4;
  WC.Seed = 5;
  for (auto &P : genSetWorkload(Spec, WC))
    M.addThread(P);
  BoostingTM E(M);
  Scheduler Sched({SchedulePolicy::RandomUniform, 5, 20000});
  RunStats St = Sched.run(E);
  EXPECT_TRUE(St.Quiescent);
}

TEST(Invariants, HoldAfterEveryStepOfOptimisticRun) {
  RegisterSpec Spec("mem", 3, 2);
  MoverChecker Movers(Spec);
  PrecongruenceChecker Pre(Spec);
  PushPullMachine M(Spec, Movers);
  WorkloadConfig WC;
  WC.Threads = 3;
  WC.TxPerThread = 2;
  WC.OpsPerTx = 2;
  WC.KeyRange = 3;
  WC.Seed = 11;
  for (auto &P : genRegisterWorkload(Spec, WC))
    M.addThread(P);
  OptimisticTM E(M);
  Rng R(3);
  uint64_t Steps = 0;
  while (!M.quiescent() && Steps++ < 5000) {
    std::vector<TxId> Runnable;
    for (const ThreadState &Th : M.threads())
      if (!Th.done())
        Runnable.push_back(Th.Tid);
    E.step(R.pick(Runnable));
    expectAllInvariants(M, Movers);
  }
  ASSERT_TRUE(M.quiescent());
  expectDerivedInvariants(M, Pre, Spec);
}
