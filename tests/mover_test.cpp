//===- tests/mover_test.cpp - Definition 4.1 --------------------------------===//
//
// The left-mover relation over logs: the Section 5.1 mnemonic (order in
// the expression = order in the real log), lifted forms, memoization, the
// paper's Section 2 boosting example (hashtable puts on distinct keys),
// and the reachability-bounded Unknown behaviour.
//
//===----------------------------------------------------------------------===//

#include "core/Mover.h"

#include "TestUtil.h"
#include "spec/MapSpec.h"
#include "spec/QueueSpec.h"
#include "spec/RegisterSpec.h"

#include <gtest/gtest.h>

using namespace pushpull;
using testutil::mkOp;

namespace {

Operation rd(Value R, Value V, OpId Id = 1) {
  return mkOp(Id, "mem", "read", {R}, V);
}
Operation wr(Value R, Value V, OpId Id = 1) {
  return mkOp(Id, "mem", "write", {R, V}, V);
}

} // namespace

TEST(Mover, Section2BoostingExample) {
  // The paper's worked criterion: ht.put(key1,val1); ht.put(key2,val2)
  // reaches the same state as the reverse provided key1 != key2.
  MapSpec S("ht", 4, 2);
  MoverChecker Movers(S);
  Operation P1 = mkOp(1, "ht", "put", {0, 1}, MapSpec::Absent);
  Operation P2 = mkOp(2, "ht", "put", {1, 1}, MapSpec::Absent);
  EXPECT_EQ(Movers.leftMover(P1, P2), Tri::Yes);
  EXPECT_EQ(Movers.leftMover(P2, P1), Tri::Yes);
  // Same key: the second put must observe the first.
  Operation P3 = mkOp(3, "ht", "put", {0, 1}, 1);
  EXPECT_EQ(Movers.leftMover(P1, P3), Tri::No);
}

TEST(Mover, SemanticMatchesMnemonicOnRegisters) {
  // rd=0 <| wr(1): real log rd.wr may be re-serialized wr.rd only if the
  // read would still return 0 — refuted.
  RegisterSpec S("mem", 1, 2);
  MoverChecker Movers(S);
  EXPECT_EQ(Movers.leftMoverSemantic(rd(0, 0), wr(0, 1)), Tri::No);
  // rd=1 <| wr(1): whenever rd=1.wr(1) is allowed the swap is too.
  EXPECT_EQ(Movers.leftMoverSemantic(rd(0, 1), wr(0, 1)), Tri::Yes);
  // wr(1) <| rd=0: the real sequence wr(1).rd=0 is never allowed: vacuous.
  EXPECT_EQ(Movers.leftMoverSemantic(wr(0, 1), rd(0, 0)), Tri::Yes);
  // wr(1) <| rd=1 is refuted from states where the register is not 1.
  EXPECT_EQ(Movers.leftMoverSemantic(wr(0, 1), rd(0, 1)), Tri::No);
}

TEST(Mover, LiftedForms) {
  RegisterSpec S("mem", 2, 2);
  MoverChecker Movers(S);
  std::vector<Operation> Others = {wr(1, 1, 1), rd(1, 1, 2)};
  // Both others are on register 1; they move around register-0 ops.
  EXPECT_EQ(Movers.leftMoverAll(Others, wr(0, 1, 3)), Tri::Yes);
  EXPECT_EQ(Movers.leftMoverOverAll(wr(0, 1, 3), Others), Tri::Yes);
  Others.push_back(rd(0, 0, 4));
  EXPECT_EQ(Movers.leftMoverAll(Others, wr(0, 1, 3)), Tri::No);
}

TEST(Mover, MemoizationByCallAndResult) {
  RegisterSpec S("mem", 1, 2);
  MoverChecker Movers(S);
  ASSERT_EQ(Movers.leftMoverSemantic(rd(0, 0, 1), wr(0, 1, 2)), Tri::No);
  uint64_t Misses = Movers.memoMisses();
  // Same call/result with different ids and stacks: memo hit.
  Operation R2 = rd(0, 0, 77);
  R2.Pre.set("x", 3);
  ASSERT_EQ(Movers.leftMoverSemantic(R2, wr(0, 1, 88)), Tri::No);
  EXPECT_EQ(Movers.memoMisses(), Misses);
  EXPECT_GT(Movers.memoHits(), 0u);
}

TEST(Mover, HintShortCircuitsSemantic) {
  RegisterSpec S("mem", 4, 4);
  MoverChecker Movers(S);
  // Different registers: answered by the hint, no reachable enumeration.
  EXPECT_EQ(Movers.leftMover(wr(0, 1), wr(1, 1)), Tri::Yes);
  EXPECT_EQ(Movers.memoMisses(), 0u) << "hint must not touch the engine";
}

TEST(Mover, ReachableEnumerationExactOnSmallSpec) {
  RegisterSpec S("mem", 2, 2);
  MoverChecker Movers(S);
  EXPECT_TRUE(Movers.reachableExact());
  // 2 registers x 2 values = 4 states, all reachable (as singletons).
  EXPECT_EQ(Movers.reachableCount(), 4u);
}

TEST(Mover, TruncatedEnumerationYieldsUnknown) {
  RegisterSpec S("mem", 2, 3); // 9 states.
  MoverLimits Limits;
  Limits.MaxReachableSets = 2;
  MoverChecker Movers(S, Limits);
  EXPECT_FALSE(Movers.reachableExact());
  // A pair the hint cannot answer: same register, needs semantics.
  EXPECT_EQ(Movers.leftMoverSemantic(rd(0, 0), wr(0, 1)), Tri::No)
      << "refutations inside the truncated prefix are still exact";
  EXPECT_EQ(Movers.leftMoverSemantic(rd(0, 1), wr(0, 1)), Tri::Unknown)
      << "Yes degrades to Unknown under truncation";
}

TEST(Mover, QueueAlmostNothingMoves) {
  QueueSpec S("q", 2, 2);
  MoverChecker Movers(S);
  Operation EnqA = mkOp(1, "q", "enq", {0}, 1);
  Operation EnqB = mkOp(2, "q", "enq", {1}, 1);
  Operation Deq0 = mkOp(3, "q", "deq", {}, 0);
  EXPECT_EQ(Movers.leftMover(EnqA, EnqB), Tri::No);
  EXPECT_EQ(Movers.leftMover(EnqA, Deq0), Tri::No);
  // Identical enqueues commute.
  EXPECT_EQ(Movers.leftMover(EnqA, mkOp(4, "q", "enq", {0}, 1)), Tri::Yes);
}

TEST(Mover, RightMoverIsFlippedLeftMover) {
  // "x can move to the right of op" is leftMover(x, op) — check the
  // identity the PUSH criterion (ii) encoding relies on against a
  // concrete asymmetric pair.
  RegisterSpec S("mem", 1, 2);
  MoverChecker Movers(S);
  // read=0 moves right of a later... i.e. real order read.write:
  EXPECT_EQ(Movers.leftMover(rd(0, 0), wr(0, 0)), Tri::Yes);
  EXPECT_EQ(Movers.leftMover(rd(0, 0), wr(0, 1)), Tri::No);
}
