//===- tests/checkpoint_test.cpp - Section 6.2 checkpoints --------------------===//

#include "tm/CheckpointTM.h"

#include "check/Serializability.h"
#include "lang/Parser.h"
#include "sim/Scheduler.h"
#include "sim/Workload.h"
#include "spec/RegisterSpec.h"
#include "tm/OptimisticTM.h"

#include <gtest/gtest.h>

using namespace pushpull;

TEST(CheckpointEngine, UncontendedRunsLikeOptimistic) {
  RegisterSpec Spec("mem", 4, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  M.addThread({parseOrDie("tx { mem.write(0, 1); v := mem.read(0) }")});
  M.addThread({parseOrDie("tx { mem.write(1, 1) }")});
  CheckpointTM E(M);
  Scheduler Sched({SchedulePolicy::RandomUniform, 3, 50000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  EXPECT_EQ(St.Aborts, 0u);
  EXPECT_EQ(E.partialAborts(), 0u);
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}

TEST(CheckpointEngine, PartialAbortRewindsOnlyTheSuffix) {
  // T0's long transaction touches register 1 early (never contended) and
  // register 0 late; T1 commits a conflicting write to register 0 in the
  // middle.  Validation fails on the *late* read, so the rewind stops at
  // the placemarker between them — the early work is preserved.
  RegisterSpec Spec("mem", 2, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  TxId T0 = M.addThread({parseOrDie(
      "tx { mem.write(1, 1); a := mem.read(1); b := mem.read(0); "
      "c := mem.read(0) }")});
  TxId T1 = M.addThread({parseOrDie("tx { mem.write(0, 1) }")});
  CheckpointConfig CC;
  CC.CheckpointEvery = 2;
  CheckpointTM E(M, CC);

  // Drive by hand: T0 runs everything but does not commit; T1 commits the
  // conflicting write; then T0 attempts to commit.
  while (!M.thread(T0).InTx || !fin(M.thread(T0).Code))
    ASSERT_NE(E.step(T0), StepStatus::Blocked);
  ASSERT_EQ(E.step(T1), StepStatus::Progress); // begin
  while (!M.thread(T1).done())
    E.step(T1);

  size_t AppsBefore = M.trace().countOf(RuleKind::App);
  StepStatus S = E.step(T0); // Commit attempt: validation fails.
  EXPECT_EQ(S, StepStatus::Aborted);
  EXPECT_EQ(E.partialAborts(), 1u);
  EXPECT_EQ(E.fullAborts(), 0u);
  // The early write(1,1)/read(1) survived the rewind.
  EXPECT_GE(M.thread(T0).L.size(), 2u);

  // Re-execution completes and commits.
  while (!M.thread(T0).done()) {
    StepStatus S2 = E.step(T0);
    ASSERT_NE(S2, StepStatus::Blocked);
  }
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkAnyOrder(M).Serializable, Tri::Yes);
  // Fewer re-APPs than a full abort would need (4 ops re-run vs 2).
  size_t AppsAfter = M.trace().countOf(RuleKind::App);
  EXPECT_LE(AppsAfter - AppsBefore, 2u)
      << "only the invalidated suffix re-executes";
}

TEST(CheckpointEngine, EscalatesToFullAbortWhenPrefixConflicts) {
  // The conflicting commit hits the *first* operation: there is no
  // placemarker before it, so the engine falls back to a full abort.
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  TxId T0 = M.addThread(
      {parseOrDie("tx { a := mem.read(0); b := mem.read(0) }")});
  TxId T1 = M.addThread({parseOrDie("tx { mem.write(0, 1) }")});
  CheckpointConfig CC;
  CC.CheckpointEvery = 1;
  CheckpointTM E(M, CC);
  while (!M.thread(T0).InTx || !fin(M.thread(T0).Code))
    ASSERT_NE(E.step(T0), StepStatus::Blocked);
  E.step(T1);
  while (!M.thread(T1).done())
    E.step(T1);
  while (!M.thread(T0).done()) {
    StepStatus S = E.step(T0);
    ASSERT_NE(S, StepStatus::Blocked);
  }
  EXPECT_GE(E.fullAborts() + E.partialAborts(), 1u);
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkAnyOrder(M).Serializable, Tri::Yes);
}

TEST(CheckpointEngine, RandomizedWorkloadsSerializable) {
  for (uint64_t Seed : {1u, 5u, 9u}) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 3;
    WC.TxPerThread = 3;
    WC.OpsPerTx = 4;
    WC.KeyRange = 2;
    WC.Seed = Seed;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    CheckpointTM E(M);
    Scheduler Sched({SchedulePolicy::RandomUniform, Seed, 200000});
    RunStats St = Sched.run(E);
    ASSERT_TRUE(St.Quiescent);
    SerializabilityChecker Oracle(Spec);
    EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
    // Checkpoint aborts never UNPUSH either (still optimistic).
    EXPECT_EQ(St.ruleCount(RuleKind::UnPush), 0u);
  }
}

TEST(CheckpointEngine, SavesWorkComparedToFullAborts) {
  // Same workload, same schedule seed: the checkpointing engine performs
  // no more UNAPPs than the plain optimistic engine.
  auto RunWith = [](bool Checkpointed) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 3;
    WC.TxPerThread = 3;
    WC.OpsPerTx = 4;
    WC.KeyRange = 2;
    WC.Seed = 33;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    uint64_t UnApps = 0;
    if (Checkpointed) {
      CheckpointTM E(M);
      Scheduler Sched({SchedulePolicy::RoundRobin, 33, 200000});
      RunStats St = Sched.run(E);
      EXPECT_TRUE(St.Quiescent);
      UnApps = St.ruleCount(RuleKind::UnApp);
    } else {
      OptimisticTM E(M);
      Scheduler Sched({SchedulePolicy::RoundRobin, 33, 200000});
      RunStats St = Sched.run(E);
      EXPECT_TRUE(St.Quiescent);
      UnApps = St.ruleCount(RuleKind::UnApp);
    }
    return UnApps;
  };
  // Not a strict inequality in general (schedules diverge after the first
  // abort), but the checkpointing run must not be wildly worse.
  EXPECT_LE(RunWith(true), RunWith(false) + 8);
}
