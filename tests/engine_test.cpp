//===- tests/engine_test.cpp - The Section 6 algorithm engines --------------===//
//
// Every engine x characteristic workload: runs reach quiescence, the
// independent oracle certifies serializability, and each algorithm's
// rule-usage *signature* holds (optimistic never UNPUSHes, boosting
// pushes eagerly, the irrevocable thread never rolls back, ...).
//
//===----------------------------------------------------------------------===//

#include "check/Serializability.h"
#include "lang/Parser.h"
#include "sim/Scheduler.h"
#include "sim/Workload.h"
#include "spec/MapSpec.h"
#include "spec/QueueSpec.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"
#include "tm/BoostingTM.h"
#include "tm/DependentTM.h"
#include "tm/EarlyReleaseTM.h"
#include "tm/HtmTM.h"
#include "tm/IrrevocableTM.h"
#include "tm/OptimisticTM.h"
#include "tm/PessimisticCommitTM.h"

#include <gtest/gtest.h>

using namespace pushpull;

namespace {

/// Run an engine over a machine until quiescence; assert it got there and
/// the run is serializable in commit order.
RunStats runAndCertify(TMEngine &E, const SequentialSpec &Spec,
                       uint64_t Seed) {
  Scheduler Sched({SchedulePolicy::RandomUniform, Seed, 200000});
  RunStats St = Sched.run(E);
  EXPECT_TRUE(St.Quiescent) << "engine failed to finish";
  SerializabilityChecker Oracle(Spec);
  SerializabilityVerdict V = Oracle.checkCommitOrder(E.machine());
  EXPECT_EQ(V.Serializable, Tri::Yes) << V.Detail;
  return St;
}

} // namespace

// --- Optimistic (Section 6.2) ------------------------------------------------

TEST(OptimisticEngine, SerializableUnderContention) {
  for (uint64_t Seed : {1u, 2u, 3u, 4u, 5u}) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 3;
    WC.TxPerThread = 3;
    WC.OpsPerTx = 2;
    WC.KeyRange = 2;
    WC.ReadPct = 50;
    WC.Seed = Seed;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    OptimisticTM E(M);
    RunStats St = runAndCertify(E, Spec, Seed);
    // Signature: an optimistic abort never needs UNPUSH (Section 6.2).
    EXPECT_EQ(St.ruleCount(RuleKind::UnPush), 0u);
  }
}

TEST(OptimisticEngine, AbortsUnderConflictThenRetries) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  // Maximal conflict: everyone reads and writes the single register.
  for (int T = 0; T < 3; ++T)
    M.addThread({parseOrDie("tx { v := mem.read(0); mem.write(0, 1) }"),
                 parseOrDie("tx { w := mem.read(0); mem.write(0, 0) }")});
  OptimisticTM E(M);
  RunStats St = runAndCertify(E, Spec, 7);
  EXPECT_EQ(St.Commits, 6u);
  EXPECT_GT(St.ruleCount(RuleKind::UnApp), 0u) << "conflicts must abort";
}

// --- Boosting (Section 6.3 / Figure 2) ---------------------------------------

TEST(BoostingEngine, ConflictFreeOnDisjointKeys) {
  SetSpec Spec("set", 8);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  // Threads touch disjoint keys: the abstract locks never contend, so
  // nothing ever blocks or aborts (E1/E5's shape claim).
  M.addThread({parseOrDie("tx { a := set.add(0); b := set.add(1) }")});
  M.addThread({parseOrDie("tx { c := set.add(2); d := set.add(3) }")});
  M.addThread({parseOrDie("tx { e := set.add(4); f := set.remove(5) }")});
  BoostingTM E(M);
  RunStats St = runAndCertify(E, Spec, 11);
  EXPECT_EQ(St.Aborts, 0u);
  EXPECT_EQ(St.BlockedSteps, 0u);
  // Signature: eager publication — every APP has its PUSH.
  EXPECT_EQ(St.ruleCount(RuleKind::App), St.ruleCount(RuleKind::Push));
}

TEST(BoostingEngine, SameKeyContentionBlocksNotAborts) {
  SetSpec Spec("set", 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  for (int T = 0; T < 3; ++T)
    M.addThread({parseOrDie("tx { a := set.add(0); b := set.remove(0) }")});
  BoostingTM E(M);
  RunStats St = runAndCertify(E, Spec, 13);
  EXPECT_EQ(St.Commits, 3u);
  EXPECT_GT(St.BlockedSteps, 0u) << "same-key transactions must wait";
}

TEST(BoostingEngine, DeadlockResolvedByAbort) {
  SetSpec Spec("set", 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  // Classic lock-order inversion: 0 then 1 vs 1 then 0.
  M.addThread({parseOrDie("tx { a := set.add(0); b := set.add(1) }")});
  M.addThread({parseOrDie("tx { c := set.add(1); d := set.add(0) }")});
  BoostingConfig BC;
  BC.DeadlockThreshold = 3;
  BoostingTM E(M, BC);
  // Round-robin forces the interleaving that deadlocks.
  Scheduler Sched({SchedulePolicy::RoundRobin, 1, 50000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  EXPECT_GT(E.deadlockAborts(), 0u);
  // The abort path used inverse operations: UNPUSH appeared.
  EXPECT_GT(St.ruleCount(RuleKind::UnPush), 0u);
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}

TEST(BoostingEngine, MapWorkloadSerializable) {
  for (uint64_t Seed : {3u, 17u, 23u}) {
    MapSpec Spec("ht", 6, 3);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 4;
    WC.TxPerThread = 2;
    WC.OpsPerTx = 3;
    WC.KeyRange = 6;
    WC.Seed = Seed;
    for (auto &P : genMapWorkload(Spec, WC))
      M.addThread(P);
    BoostingTM E(M);
    runAndCertify(E, Spec, Seed);
  }
}

TEST(BoostingEngine, QueueSerializesViaWholeObjectLock) {
  QueueSpec Spec("q", 3, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  M.addThread({parseOrDie("tx { a := q.enq(0); b := q.enq(1) }")});
  M.addThread({parseOrDie("tx { c := q.deq(); d := q.deq() }")});
  BoostingConfig BC;
  BC.KeyGranularLocks = false; // Queue ops on distinct args don't commute.
  BoostingTM E(M, BC);
  runAndCertify(E, Spec, 19);
}

// --- Pessimistic commit (Matveev-Shavit, Section 6.3) ------------------------

TEST(PessimisticEngine, NeverAborts) {
  for (uint64_t Seed : {1u, 9u, 27u}) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 3;
    WC.TxPerThread = 2;
    WC.OpsPerTx = 2;
    WC.KeyRange = 2;
    WC.ReadPct = 60;
    WC.Seed = Seed;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    PessimisticCommitTM E(M);
    RunStats St = runAndCertify(E, Spec, Seed);
    EXPECT_EQ(St.Aborts, 0u) << "fully pessimistic: nobody ever aborts";
    EXPECT_EQ(St.ruleCount(RuleKind::UnApp), 0u);
  }
}

TEST(PessimisticEngine, WriterWaitsForReaders) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  // A reader with two reads and a writer on the same register.
  M.addThread({parseOrDie("tx { v := mem.read(0); w := mem.read(0) }")});
  M.addThread({parseOrDie("tx { mem.write(0, 1) }")});
  PessimisticCommitTM E(M);
  // Round-robin: reader does one read, writer tries to commit between the
  // reader's reads and must wait.
  Scheduler Sched({SchedulePolicy::RoundRobin, 1, 50000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  EXPECT_EQ(St.Aborts, 0u);
  EXPECT_GT(E.writerWaits() + St.BlockedSteps, 0u);
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
  // The reader saw a consistent snapshot.
  for (const CommittedTx &C : M.committed())
    if (C.Tid == 0)
      EXPECT_EQ(C.FinalSigma.getOrDie("v"), C.FinalSigma.getOrDie("w"));
}

// --- Mixed / irrevocable (Section 6.4) ----------------------------------------

TEST(IrrevocableEngine, IrrevocableThreadNeverRollsBack) {
  for (uint64_t Seed : {5u, 6u}) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 3;
    WC.TxPerThread = 2;
    WC.OpsPerTx = 2;
    WC.KeyRange = 2;
    WC.Seed = Seed;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    IrrevocableTM E(M);
    runAndCertify(E, Spec, Seed);
    EXPECT_EQ(E.irrevocableRollbacks(), 0u);
  }
}

TEST(IrrevocableEngine, OptimisticPeersAbortAgainstIrrevocable) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  M.addThread({parseOrDie("tx { mem.write(0, 1); v := mem.read(0) }")});
  M.addThread({parseOrDie("tx { w := mem.read(0); mem.write(0, 0) }")});
  M.addThread({parseOrDie("tx { u := mem.read(0); mem.write(0, 1) }")});
  IrrevocableTM E(M);
  RunStats St = runAndCertify(E, Spec, 31);
  EXPECT_EQ(St.Commits, 3u);
  EXPECT_EQ(E.irrevocableRollbacks(), 0u);
}

// --- Early release (Section 6.5) ----------------------------------------------

TEST(EarlyReleaseEngine, DetectsConflictsEarlyAndReleases) {
  RegisterSpec Spec("mem", 2, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  WorkloadConfig WC;
  WC.Threads = 3;
  WC.TxPerThread = 2;
  WC.OpsPerTx = 2;
  WC.KeyRange = 2;
  WC.Seed = 41;
  for (auto &P : genRegisterWorkload(Spec, WC))
    M.addThread(P);
  EarlyReleaseTM E(M);
  RunStats St = runAndCertify(E, Spec, 41);
  EXPECT_GT(E.releases(), 0u) << "read handles must be released pre-commit";
  (void)St;
}

// --- Dependent transactions (Section 6.5) --------------------------------------

TEST(DependentEngine, DependencyGatesCommit) {
  RegisterSpec Spec("mem", 2, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  M.addThread({parseOrDie("tx { mem.write(0, 1); mem.write(1, 1) }")});
  M.addThread({parseOrDie("tx { v := mem.read(0); w := mem.read(1) }")});
  DependentTM E(M);
  Scheduler Sched({SchedulePolicy::RoundRobin, 1, 50000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  EXPECT_GT(E.dependenciesFormed(), 0u);
  EXPECT_GT(E.gatedCommits() + E.gatedPublications(), 0u)
      << "reader must wait for the writer somewhere";
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkAnyOrder(M).Serializable, Tri::Yes);
}

TEST(DependentEngine, CascadingAbortDetangles) {
  RegisterSpec Spec("mem", 2, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  M.addThread({parseOrDie("tx { mem.write(0, 1); mem.write(1, 1) }")});
  M.addThread({parseOrDie("tx { v := mem.read(0); w := mem.read(1) }")});
  DependentConfig DC;
  DC.AbortChancePct = 60; // Make the writer abort often.
  DC.Seed = 3;
  DependentTM E(M, DC);
  Scheduler Sched({SchedulePolicy::RoundRobin, 2, 100000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  EXPECT_GT(St.Aborts, 0u);
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkAnyOrder(M).Serializable, Tri::Yes);
}

TEST(DependentEngine, RandomizedRunsSerializable) {
  for (uint64_t Seed : {2u, 4u, 8u}) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 3;
    WC.TxPerThread = 2;
    WC.OpsPerTx = 2;
    WC.KeyRange = 2;
    WC.ReadPct = 70;
    WC.Seed = Seed;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    DependentConfig DC;
    DC.AbortChancePct = 10;
    DC.Seed = Seed;
    DependentTM E(M, DC);
    Scheduler Sched({SchedulePolicy::RandomUniform, Seed, 200000});
    RunStats St = Sched.run(E);
    ASSERT_TRUE(St.Quiescent);
    SerializabilityChecker Oracle(Spec);
    EXPECT_EQ(Oracle.checkAnyOrder(M).Serializable, Tri::Yes);
  }
}

// --- HTM (Section 7 substrate) -------------------------------------------------

TEST(HtmEngine, SemanticModeSerializable) {
  for (uint64_t Seed : {1u, 2u}) {
    RegisterSpec Spec("mem", 2, 2);
    MoverChecker Movers(Spec);
    PushPullMachine M(Spec, Movers);
    WorkloadConfig WC;
    WC.Threads = 3;
    WC.TxPerThread = 2;
    WC.OpsPerTx = 2;
    WC.KeyRange = 2;
    WC.Seed = Seed;
    for (auto &P : genRegisterWorkload(Spec, WC))
      M.addThread(P);
    HtmTM E(M);
    runAndCertify(E, Spec, Seed);
  }
}

TEST(HtmEngine, WordGranularityCountsFalseConflicts) {
  // Blind counter increments commute semantically; word-granular HTM
  // aborts them anyway — the Section 7 motivation.
  CounterSpec Spec("c", 1, 8);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  for (int T = 0; T < 3; ++T)
    M.addThread({parseOrDie("tx { c.inc(0); c.inc(0) }")});
  HtmConfig HC;
  HC.WordGranularity = true;
  HtmTM E(M, HC);
  Scheduler Sched({SchedulePolicy::RoundRobin, 1, 100000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  EXPECT_GT(E.falseConflicts(), 0u)
      << "hardware conservatism must show against commuting increments";
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}

TEST(HtmEngine, SemanticModeLetsIncrementsRace) {
  CounterSpec Spec("c", 1, 8);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  for (int T = 0; T < 3; ++T)
    M.addThread({parseOrDie("tx { c.inc(0); c.inc(0) }")});
  HtmTM E(M); // Semantic conflicts only.
  Scheduler Sched({SchedulePolicy::RoundRobin, 1, 100000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  EXPECT_EQ(St.Aborts, 0u) << "commuting increments never conflict";
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}

TEST(HtmEngine, FallbackLockAfterRepeatedAborts) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  for (int T = 0; T < 4; ++T)
    M.addThread({parseOrDie("tx { v := mem.read(0); mem.write(0, 1) }"),
                 parseOrDie("tx { w := mem.read(0); mem.write(0, 0) }")});
  HtmConfig HC;
  HC.MaxRetries = 1;
  HtmTM E(M, HC);
  RunStats St = Scheduler({SchedulePolicy::RandomUniform, 3, 200000}).run(E);
  ASSERT_TRUE(St.Quiescent);
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}
