//===- tests/spec_register_test.cpp - RegisterSpec --------------------------===//

#include "spec/RegisterSpec.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pushpull;
using testutil::hintDisagreements;
using testutil::mkOp;

namespace {

RegisterSpec spec() { return RegisterSpec("mem", 2, 3); }

Operation rd(Value R, Value V, OpId Id = 1) {
  return mkOp(Id, "mem", "read", {R}, V);
}
Operation wr(Value R, Value V, OpId Id = 1) {
  return mkOp(Id, "mem", "write", {R, V}, V);
}

} // namespace

TEST(RegisterSpec, InitialStateAllZero) {
  RegisterSpec S = spec();
  auto I = S.initialStates();
  ASSERT_EQ(I.size(), 1u);
  EXPECT_EQ(I[0], "0,0");
}

TEST(RegisterSpec, ReadOfInitialValueAllowed) {
  RegisterSpec S = spec();
  EXPECT_TRUE(S.allowed({rd(0, 0)}));
  EXPECT_FALSE(S.allowed({rd(0, 1)}));
}

TEST(RegisterSpec, WriteThenReadBack) {
  RegisterSpec S = spec();
  EXPECT_TRUE(S.allowed({wr(0, 2, 1), rd(0, 2, 2)}));
  EXPECT_FALSE(S.allowed({wr(0, 2, 1), rd(0, 1, 2)}));
  // The paper's example: a := x with wrong return is not allowed.
  EXPECT_TRUE(S.allowed({wr(1, 1, 1), rd(1, 1, 2), rd(0, 0, 3)}));
}

TEST(RegisterSpec, PrefixClosed) {
  // allowed must be prefix closed (Parameter 3.1): check on a batch of
  // allowed logs that every prefix is allowed too.
  RegisterSpec S = spec();
  std::vector<std::vector<Operation>> Logs = {
      {wr(0, 1, 1), rd(0, 1, 2), wr(0, 2, 3), rd(0, 2, 4)},
      {wr(1, 2, 1), wr(0, 1, 2), rd(1, 2, 3)},
      {rd(0, 0, 1), rd(1, 0, 2), wr(1, 1, 3)},
  };
  for (const auto &Log : Logs) {
    ASSERT_TRUE(S.allowed(Log));
    for (size_t N = 0; N <= Log.size(); ++N) {
      std::vector<Operation> Prefix(Log.begin(), Log.begin() + N);
      EXPECT_TRUE(S.allowed(Prefix));
    }
  }
}

TEST(RegisterSpec, CompletionsAreCurrentValue) {
  RegisterSpec S = spec();
  StateSet After = S.denote({wr(0, 2, 1)});
  auto Comps = S.completionsFrom(After, {"mem", "read", {0}});
  ASSERT_EQ(Comps.size(), 1u);
  EXPECT_EQ(Comps[0].Result, Value(2));
}

TEST(RegisterSpec, WriteEchoesValue) {
  RegisterSpec S = spec();
  auto Comps = S.completionsFrom(S.initial(), {"mem", "write", {1, 2}});
  ASSERT_EQ(Comps.size(), 1u);
  EXPECT_EQ(Comps[0].Result, Value(2));
}

TEST(RegisterSpec, OutOfDomainRejected) {
  RegisterSpec S = spec();
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"mem", "read", {5}}).empty());
  EXPECT_TRUE(
      S.completionsFrom(S.initial(), {"mem", "write", {0, 9}}).empty());
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"mem", "cas", {0}}).empty());
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"other", "read", {0}}).empty());
}

TEST(RegisterSpec, ProbeAlphabetCoversReadsAndWrites) {
  RegisterSpec S = spec();
  // 2 regs x 3 vals x {read, write}.
  EXPECT_EQ(S.probeOps().size(), 12u);
}

TEST(RegisterSpec, HintDifferentRegistersYes) {
  RegisterSpec S = spec();
  EXPECT_EQ(S.leftMoverHint(wr(0, 1), wr(1, 2)), Tri::Yes);
  EXPECT_EQ(S.leftMoverHint(rd(0, 0), wr(1, 2)), Tri::Yes);
}

TEST(RegisterSpec, HintSameRegisterTable) {
  RegisterSpec S = spec();
  // Reads commute with reads.
  EXPECT_EQ(S.leftMoverHint(rd(0, 1), rd(0, 1)), Tri::Yes);
  // read=x <| write(v): only when x == v.
  EXPECT_EQ(S.leftMoverHint(rd(0, 1), wr(0, 1)), Tri::Yes);
  EXPECT_EQ(S.leftMoverHint(rd(0, 1), wr(0, 2)), Tri::No);
  // write(v) <| read=x: only when x != v (vacuous) ... x == v refuted.
  EXPECT_EQ(S.leftMoverHint(wr(0, 1), rd(0, 1)), Tri::No);
  EXPECT_EQ(S.leftMoverHint(wr(0, 1), rd(0, 2)), Tri::Yes);
  // Writes of different values do not commute; same value does.
  EXPECT_EQ(S.leftMoverHint(wr(0, 1), wr(0, 2)), Tri::No);
  EXPECT_EQ(S.leftMoverHint(wr(0, 1), wr(0, 1)), Tri::Yes);
}

TEST(RegisterSpec, HintAgreesWithSemantics) {
  RegisterSpec S = spec();
  EXPECT_EQ(hintDisagreements(S), std::vector<std::string>{});
}

TEST(RegisterSpec, SuccessorsRejectWrongResult) {
  RegisterSpec S = spec();
  Operation BadWrite = wr(0, 1);
  BadWrite.Result = 2; // write echoes its value; 2 != 1.
  EXPECT_TRUE(S.successors("0,0", BadWrite).empty());
}

TEST(RegisterSpec, Name) {
  EXPECT_EQ(spec().name(), "registers(mem,r=2,v=3)");
}
