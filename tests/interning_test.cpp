//===- tests/interning_test.cpp - Hash-consing and transition memo ----------===//
//
// The interning layer (StateTable) is representation only: dense ids must
// mirror canonical-value equality exactly, and the memoized denotation
// must agree with a from-scratch fold of SequentialSpec::successors on
// every log.  These tests pin that contract across all seven specs.
//
//===----------------------------------------------------------------------===//

#include "core/Spec.h"

#include "spec/BankSpec.h"
#include "spec/CompositeSpec.h"
#include "spec/CounterSpec.h"
#include "spec/MapSpec.h"
#include "spec/QueueSpec.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <vector>

using namespace pushpull;

namespace {

/// [[Log]] computed with no interning, no memo, no StateSet machinery on
/// the way: a plain fold of successors() over plain state vectors.
StateSet uncachedDenote(const SequentialSpec &S,
                        const std::vector<Operation> &Log) {
  StateSet Cur = StateSet::of(S.initialStates());
  for (const Operation &Op : Log) {
    std::vector<State> Next;
    for (const State &St : Cur.states())
      for (State &N : S.successors(St, Op))
        Next.push_back(std::move(N));
    Cur = StateSet::of(std::move(Next));
    if (Cur.empty())
      break;
  }
  return Cur;
}

/// All seven specifications, each with a small but nontrivial scope.
std::vector<std::shared_ptr<const SequentialSpec>> allSpecs() {
  std::vector<std::shared_ptr<const SequentialSpec>> Out;
  Out.push_back(std::make_shared<RegisterSpec>("mem", 2, 2));
  Out.push_back(std::make_shared<CounterSpec>("ctr", 2, 3));
  Out.push_back(std::make_shared<SetSpec>("set", 3));
  Out.push_back(std::make_shared<MapSpec>("map", 2, 2));
  Out.push_back(std::make_shared<QueueSpec>("q", 2, 2));
  Out.push_back(std::make_shared<BankSpec>("bank", 2, 2, 1));
  auto Comp = std::make_shared<CompositeSpec>();
  Comp->add("mem", std::make_shared<RegisterSpec>("mem", 1, 2));
  Comp->add("ctr", std::make_shared<CounterSpec>("ctr", 1, 2));
  Out.push_back(Comp);
  return Out;
}

} // namespace

TEST(Interning, StateIdsAreHashConsed) {
  RegisterSpec Spec("mem", 1, 2);
  StateTable &T = Spec.table();
  StateId A = T.internState("s0");
  StateId B = T.internState("s1");
  EXPECT_NE(A, B);
  EXPECT_EQ(T.internState("s0"), A);
  EXPECT_EQ(T.internState("s1"), B);
}

TEST(Interning, EmptySetIsAlwaysIdZero) {
  RegisterSpec Spec("mem", 1, 2);
  EXPECT_EQ(Spec.internSet(StateSet()), StateTable::EmptySetId);
  EXPECT_TRUE(Spec.setOf(StateTable::EmptySetId).empty());
}

TEST(Interning, SetIdEqualityIffSetEquality) {
  RegisterSpec Spec("mem", 1, 2);
  // Random subsets of a small state pool: for every pair, id equality
  // must coincide with canonical set equality.
  std::vector<State> Pool = {"a", "b", "c", "d", "e"};
  std::mt19937 Rng(7);
  std::vector<StateSet> Sets;
  std::vector<StateSetId> Ids;
  for (int I = 0; I < 64; ++I) {
    std::vector<State> Pick;
    for (const State &S : Pool)
      if (Rng() & 1)
        Pick.push_back(S);
    StateSet Set = StateSet::of(Pick);
    Ids.push_back(Spec.internSet(Set));
    Sets.push_back(std::move(Set));
  }
  for (size_t I = 0; I < Sets.size(); ++I)
    for (size_t J = 0; J < Sets.size(); ++J)
      EXPECT_EQ(Ids[I] == Ids[J], Sets[I] == Sets[J])
          << Sets[I].toString() << " vs " << Sets[J].toString();
}

TEST(Interning, SetOfRoundTripsCanonicalSet) {
  SetSpec Spec("set", 3);
  StateSet Init = Spec.initial();
  StateSetId Id = Spec.internSet(Init);
  EXPECT_EQ(Spec.setOf(Id), Init);
}

TEST(Interning, OpKeysDependOnCallAndResultOnly) {
  RegisterSpec Spec("mem", 1, 2);
  StateTable &T = Spec.table();

  Operation A;
  A.Call = {"mem", "read", {0}};
  A.Result = 1;
  A.Id = 3;
  Operation B = A;
  B.Id = 99; // Different op instance, same (Call, Result).
  EXPECT_EQ(T.opKey(A), T.opKey(B));

  // The key cache follows (Call, Result) through copies; mutating either
  // field afterwards requires a reset() (the Op.h contract).
  Operation C = A;
  C.Result = 0; // Same call, different result: a different denotation.
  C.KeyCache.reset();
  EXPECT_NE(T.opKey(A), T.opKey(C));

  Operation D = A;
  D.Call.Args = {1};
  D.KeyCache.reset();
  EXPECT_NE(T.opKey(A), T.opKey(D));
}

TEST(Interning, MemoizedDenotationMatchesUncachedFold) {
  // Randomized logs over the probe alphabet of each of the seven specs:
  // the interned, memoized route (denote / denoteId) must produce exactly
  // the canonical set of the from-scratch successors() fold.
  for (const auto &Spec : allSpecs()) {
    std::vector<Operation> Probes = Spec->probeOps();
    ASSERT_FALSE(Probes.empty()) << Spec->name();
    std::mt19937 Rng(42);
    std::uniform_int_distribution<size_t> PickOp(0, Probes.size() - 1);
    std::uniform_int_distribution<size_t> PickLen(0, 6);
    for (int Trial = 0; Trial < 40; ++Trial) {
      std::vector<Operation> Log;
      size_t Len = PickLen(Rng);
      for (size_t I = 0; I < Len; ++I)
        Log.push_back(Probes[PickOp(Rng)]);

      StateSet Slow = uncachedDenote(*Spec, Log);
      StateSet ViaMemo = Spec->denote(Log);
      EXPECT_EQ(ViaMemo, Slow)
          << Spec->name() << " trial " << Trial << ": memoized denotation "
          << ViaMemo.toString() << " != uncached " << Slow.toString();

      StateSetId Id = Spec->denoteId(Log);
      EXPECT_EQ(Spec->setOf(Id), Slow) << Spec->name() << " (interned route)";
      EXPECT_EQ(Id == StateTable::EmptySetId, Slow.empty()) << Spec->name();
    }
  }
}

TEST(Interning, RepeatedDenotationIsServedFromTheMemo) {
  CounterSpec Spec("ctr", 1, 4);
  std::vector<Operation> Probes = Spec.probeOps();
  std::vector<Operation> Log = {Probes[0], Probes[1 % Probes.size()],
                                Probes[0]};
  StateSet First = Spec.denote(Log);
  InternStats Before = Spec.internStats();
  StateSet Second = Spec.denote(Log);
  InternStats After = Spec.internStats();
  EXPECT_EQ(First, Second);
  EXPECT_EQ(After.TransitionMemoMisses, Before.TransitionMemoMisses)
      << "second identical denotation must not recompute any transition";
  EXPECT_GT(After.TransitionMemoHits, Before.TransitionMemoHits);
}
