//===- tests/open_nesting_test.cpp - Open nested transactions -----------------===//

#include "tm/OpenNestingTM.h"

#include "check/Serializability.h"
#include "lang/Parser.h"
#include "sim/Scheduler.h"
#include "spec/MapSpec.h"
#include "spec/SetSpec.h"

#include <gtest/gtest.h>

using namespace pushpull;

namespace {

/// Current value of set.contains(K) / map.get(K) over the committed log.
Value observe(const SequentialSpec &Spec, const PushPullMachine &M,
              const ResolvedCall &Call) {
  auto Cs = Spec.completionsFrom(Spec.denote(M.committedLog()), Call);
  EXPECT_EQ(Cs.size(), 1u);
  return Cs.empty() || !Cs[0].Result ? Value(-99) : *Cs[0].Result;
}

} // namespace

TEST(Inverses, SetTable) {
  InverseFn Inv = setInverses();
  Operation Add;
  Add.Call = {"s", "add", {3}};
  Add.Result = 1;
  auto R = Inv(Add);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Method, "remove");
  Add.Result = 0; // Did not insert: nothing to compensate.
  EXPECT_FALSE(Inv(Add).has_value());
  Operation Has;
  Has.Call = {"s", "contains", {3}};
  Has.Result = 1;
  EXPECT_FALSE(Inv(Has).has_value());
}

TEST(Inverses, MapTable) {
  InverseFn Inv = mapInverses();
  Operation Put;
  Put.Call = {"m", "put", {1, 2}};
  Put.Result = MapSpec::Absent;
  auto R = Inv(Put);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Method, "remove");
  Put.Result = 3; // Overwrote 3: compensation restores it.
  R = Inv(Put);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->Method, "put");
  EXPECT_EQ(std::get<Value>(R->Args[1]), 3);
}

TEST(Inverses, CounterAndBankTables) {
  InverseFn C = counterInverses();
  Operation Inc;
  Inc.Call = {"c", "inc", {0}};
  EXPECT_EQ(C(Inc)->Method, "dec");
  Operation AddK;
  AddK.Call = {"c", "add", {0, 3}};
  EXPECT_EQ(std::get<Value>(C(AddK)->Args[1]), -3);

  InverseFn B = bankInverses();
  Operation Dep;
  Dep.Call = {"b", "deposit", {0, 2}};
  EXPECT_EQ(B(Dep)->Method, "withdraw");
  Operation Wd;
  Wd.Call = {"b", "withdraw", {0, 2}};
  Wd.Result = 0; // Failed: nothing to undo.
  EXPECT_FALSE(B(Wd).has_value());
}

TEST(Inverses, RoutingByObject) {
  InverseFn Inv = inversesByObject(
      {{"s", setInverses()}, {"c", counterInverses()}});
  Operation Add;
  Add.Call = {"s", "add", {1}};
  Add.Result = 1;
  EXPECT_TRUE(Inv(Add).has_value());
  Operation Other;
  Other.Call = {"unknown", "add", {1}};
  Other.Result = 1;
  EXPECT_FALSE(Inv(Other).has_value());
}

TEST(OpenNesting, SegmentsCommitIndependently) {
  SetSpec Spec("s", 4);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  std::vector<std::vector<OuterTx>> Outer = {
      {OuterTx{{parseOrDie("tx { a := s.add(0) }"),
                parseOrDie("tx { b := s.add(1) }")}}}};
  OpenNestingTM E(M, Outer);

  // Run just the first segment to completion.
  while (M.trace().countOf(RuleKind::Commit) < 1) {
    StepStatus S = E.step(0);
    ASSERT_NE(S, StepStatus::Finished);
  }
  // The open segment's effect is committed — visible to everyone —
  // although the outer transaction is not finished.
  EXPECT_EQ(observe(Spec, M, {"s", "contains", {0}}), 1);
  EXPECT_EQ(E.outerCommits(), 0u);

  while (M.trace().countOf(RuleKind::Commit) < 2)
    E.step(0);
  EXPECT_EQ(E.outerCommits(), 1u);
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}

TEST(OpenNesting, OuterAbortCompensatesCommittedSegments) {
  SetSpec Spec("s", 4);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  std::vector<std::vector<OuterTx>> Outer = {
      {OuterTx{{parseOrDie("tx { a := s.add(0) }"),
                parseOrDie("tx { b := s.add(1) }")}}}};
  OpenNestingConfig OC;
  OC.OuterAbortPct = 100; // Abort after the first segment, once.
  OC.MaxAbortsPerOuter = 1;
  OpenNestingTM E(M, Outer, OC);
  Scheduler Sched({SchedulePolicy::RoundRobin, 1, 50000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  EXPECT_EQ(E.outerAborts(), 1u);
  EXPECT_GT(E.compensationsRun(), 0u);
  EXPECT_EQ(E.outerCommits(), 1u) << "the retry completes";
  // The retry re-added both elements; the compensation removed the first
  // attempt's add.  Final state: both present exactly once.
  EXPECT_EQ(observe(Spec, M, {"s", "contains", {0}}), 1);
  EXPECT_EQ(observe(Spec, M, {"s", "contains", {1}}), 1);
  // Crucially, the abort used COMPENSATION (a fresh remove transaction),
  // not UNPUSH of the committed segment.
  EXPECT_EQ(St.ruleCount(RuleKind::UnPush), 0u);
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}

TEST(OpenNesting, AbortBeforeAnyCommitJustRestarts) {
  SetSpec Spec("s", 4);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  std::vector<std::vector<OuterTx>> Outer = {
      {OuterTx{{parseOrDie("tx { a := s.add(0) }")}}}};
  OpenNestingConfig OC;
  OC.OuterAbortPct = 100;
  OpenNestingTM E(M, Outer, OC);
  Scheduler Sched({SchedulePolicy::RoundRobin, 1, 50000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  // Single-segment outers never abort "between segments".
  EXPECT_EQ(E.outerAborts(), 0u);
  EXPECT_EQ(E.outerCommits(), 1u);
}

TEST(OpenNesting, ConcurrentOutersSerializable) {
  MapSpec Spec("m", 4, 4);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  std::vector<std::vector<OuterTx>> Outer = {
      {OuterTx{{parseOrDie("tx { a := m.put(0, 1) }"),
                parseOrDie("tx { b := m.put(1, 1) }")}}},
      {OuterTx{{parseOrDie("tx { c := m.put(2, 2) }"),
                parseOrDie("tx { d := m.put(1, 2) }")}}}};
  OpenNestingConfig OC;
  OC.OuterAbortPct = 50;
  OC.Inverse = mapInverses();
  OC.Seed = 5;
  OpenNestingTM E(M, Outer, OC);
  Scheduler Sched({SchedulePolicy::RandomUniform, 5, 100000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  EXPECT_EQ(E.outerCommits(), 2u);
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}
