//===- tests/fig2_test.cpp - Figure 2: boosted hashtable ---------------------===//
//
// The paper's Figure 2 decomposes a boosted hashtable put/get into
// PUSH/PULL rules:
//
//   atomic {                      -> beginTx  (+ implicit PULL: boosting
//     lock(abstractLock[key])        reads shared state in place)
//     old = map.put(key, value)   -> APP ; PUSH at the linearization point
//     ... on abort:
//       if old absent: remove(key)      -> UNPUSH ; UNAPP ("insert" case)
//       else:          put(key, old)    -> UNPUSH ; UNAPP ("update" case)
//     unlock; commit              -> CMT
//   }
//
// These tests replay both the commit and both abort paths through the
// machine and check every rule fires with its criteria satisfied, and
// that the abort paths restore the pre-state exactly.
//
//===----------------------------------------------------------------------===//

#include "check/Serializability.h"
#include "lang/Parser.h"
#include "sim/Scheduler.h"
#include "spec/MapSpec.h"
#include "tm/BoostingTM.h"

#include <gtest/gtest.h>

using namespace pushpull;

namespace {

struct Fig2Rig {
  MapSpec Spec{"map", 4, 4};
  MoverChecker Movers{Spec};
  PushPullMachine M{Spec, Movers};
};

} // namespace

TEST(Figure2, PutCommitPath) {
  Fig2Rig Rig;
  TxId T = Rig.M.addThread({parseOrDie("tx { old := map.put(1, 2) }")});
  ASSERT_TRUE(Rig.M.beginTx(T));
  // APP: apply put locally; the completion is the previous value (Absent).
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  EXPECT_EQ(Rig.M.thread(T).Sigma.getOrDie("old"), MapSpec::Absent);
  // PUSH at the linearization point (the boosted map.put call).
  ASSERT_TRUE(Rig.M.push(T, 0).Applied);
  // CMT: unlock happens engine-side; the model commits.
  ASSERT_TRUE(Rig.M.commit(T).Applied);
  ASSERT_EQ(Rig.M.committedLog().size(), 1u);
  SerializabilityChecker Oracle(Rig.Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(Rig.M).Serializable, Tri::Yes);
}

TEST(Figure2, AbortPathInsertCase) {
  // put returned Absent ("insert" case): the catch block removes the key.
  // In the model: UNPUSH (the inverse on the shared structure) + UNAPP.
  Fig2Rig Rig;
  TxId T = Rig.M.addThread({parseOrDie("tx { old := map.put(1, 2) }")});
  ASSERT_TRUE(Rig.M.beginTx(T));
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T, 0).Applied);
  ASSERT_EQ(Rig.M.global().size(), 1u);
  // Abort: UNPUSH then UNAPP, in reverse order of the forward rules.
  ASSERT_TRUE(Rig.M.unpush(T, 0).Applied);
  ASSERT_TRUE(Rig.M.unapp(T).Applied);
  EXPECT_TRUE(Rig.M.global().empty()) << "shared state restored";
  EXPECT_TRUE(Rig.M.thread(T).L.empty());
  EXPECT_FALSE(Rig.M.thread(T).Sigma.get("old").has_value())
      << "local stack rewound";
}

TEST(Figure2, AbortPathUpdateCase) {
  // Key already present: put returns the old value; the catch block
  // re-puts the old value.  In the model the UNPUSH of the second put
  // removes its log entry, after which a get sees the first value again.
  Fig2Rig Rig;
  TxId T0 = Rig.M.addThread({parseOrDie("tx { a := map.put(1, 3) }")});
  ASSERT_TRUE(Rig.M.beginTx(T0));
  ASSERT_TRUE(Rig.M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T0, 0).Applied);
  ASSERT_TRUE(Rig.M.commit(T0).Applied);

  TxId T1 = Rig.M.addThread({parseOrDie("tx { old := map.put(1, 2) }")});
  ASSERT_TRUE(Rig.M.beginTx(T1));
  // Boosting pulls the key's committed history first.
  ASSERT_TRUE(Rig.M.pull(T1, 0).Applied);
  ASSERT_TRUE(Rig.M.app(T1, 0, 0).Applied);
  EXPECT_EQ(Rig.M.thread(T1).Sigma.getOrDie("old"), 3) << "update case";
  ASSERT_TRUE(Rig.M.push(T1, 1).Applied);
  // Abort.
  ASSERT_TRUE(Rig.M.unpush(T1, 1).Applied);
  ASSERT_TRUE(Rig.M.unapp(T1).Applied);
  // The map still holds the committed value 3.
  StateSet View = Rig.Spec.denote(Rig.M.committedLog());
  auto Comps = Rig.Spec.completionsFrom(View, {"map", "get", {1}});
  ASSERT_EQ(Comps.size(), 1u);
  EXPECT_EQ(Comps[0].Result, Value(3));
}

TEST(Figure2, EngineRunsWholeScenario) {
  // The full Figure 2 workload through the boosting engine: concurrent
  // puts/gets on overlapping keys, all serializable, eager push pattern.
  Fig2Rig Rig;
  Rig.M.addThread({parseOrDie("tx { a := map.put(1, 2); g := map.get(3) }")});
  Rig.M.addThread({parseOrDie("tx { b := map.put(1, 3) }"),
                   parseOrDie("tx { c := map.get(1) }")});
  Rig.M.addThread({parseOrDie("tx { d := map.put(3, 1); e := map.get(1) }")});
  BoostingTM E(Rig.M);
  Scheduler Sched({SchedulePolicy::RandomUniform, 77, 100000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  SerializabilityChecker Oracle(Rig.Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(Rig.M).Serializable, Tri::Yes);
  EXPECT_EQ(St.ruleCount(RuleKind::App), St.ruleCount(RuleKind::Push))
      << "boosting publishes at every linearization point";
}

TEST(Figure2, CriterionCommutesAcrossKeysOnly) {
  // The Section 2 proof obligation: put(key1,v1) and put(key2,v2) reach
  // the same state in both orders provided key1 != key2 — and the PUSH
  // criterion accepts/rejects accordingly.
  Fig2Rig Rig;
  TxId T0 = Rig.M.addThread({parseOrDie("tx { a := map.put(1, 2) }")});
  TxId T1 = Rig.M.addThread({parseOrDie("tx { b := map.put(2, 2) }")});
  TxId T2 = Rig.M.addThread({parseOrDie("tx { c := map.put(1, 3) }")});
  ASSERT_TRUE(Rig.M.beginTx(T0));
  ASSERT_TRUE(Rig.M.beginTx(T1));
  ASSERT_TRUE(Rig.M.beginTx(T2));
  ASSERT_TRUE(Rig.M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T0, 0).Applied);
  // Different key: concurrent uncommitted puts commute — push allowed.
  ASSERT_TRUE(Rig.M.app(T1, 0, 0).Applied);
  EXPECT_TRUE(Rig.M.push(T1, 0).Applied);
  // Same key: the puts conflict — push rejected (criterion (ii)).  This
  // is the situation boosting's abstract lock prevents from arising.
  ASSERT_TRUE(Rig.M.app(T2, 0, 0).Applied);
  RuleResult R = Rig.M.push(T2, 0);
  EXPECT_FALSE(R.Applied);
}
