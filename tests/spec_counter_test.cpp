//===- tests/spec_counter_test.cpp - CounterSpec ----------------------------===//

#include "spec/CounterSpec.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pushpull;
using testutil::hintDisagreements;
using testutil::mkOp;

namespace {

CounterSpec spec() { return CounterSpec("c", 2, 4); }

Operation inc(Value I, OpId Id = 1) { return mkOp(Id, "c", "inc", {I}); }
Operation dec(Value I, OpId Id = 1) { return mkOp(Id, "c", "dec", {I}); }
Operation add(Value I, Value K, OpId Id = 1) {
  return mkOp(Id, "c", "add", {I, K});
}
Operation rd(Value I, Value V, OpId Id = 1) {
  return mkOp(Id, "c", "read", {I}, V);
}

} // namespace

TEST(CounterSpec, StartsAtZero) {
  CounterSpec S = spec();
  EXPECT_TRUE(S.allowed({rd(0, 0), rd(1, 0)}));
  EXPECT_FALSE(S.allowed({rd(0, 1)}));
}

TEST(CounterSpec, IncThenRead) {
  CounterSpec S = spec();
  EXPECT_TRUE(S.allowed({inc(0, 1), rd(0, 1, 2)}));
  EXPECT_TRUE(S.allowed({inc(0, 1), inc(0, 2), rd(0, 2, 3)}));
  EXPECT_FALSE(S.allowed({inc(0, 1), rd(0, 0, 2)}));
}

TEST(CounterSpec, ModularWraparound) {
  CounterSpec S = spec();
  EXPECT_TRUE(
      S.allowed({inc(0, 1), inc(0, 2), inc(0, 3), inc(0, 4), rd(0, 0, 5)}));
  EXPECT_TRUE(S.allowed({dec(0, 1), rd(0, 3, 2)}));
}

TEST(CounterSpec, AddArbitraryDelta) {
  CounterSpec S = spec();
  EXPECT_TRUE(S.allowed({add(0, 3, 1), rd(0, 3, 2)}));
  EXPECT_TRUE(S.allowed({add(0, -1, 1), rd(0, 3, 2)}));
  EXPECT_TRUE(S.allowed({add(1, 6, 1), rd(1, 2, 2)}));
}

TEST(CounterSpec, BlindUpdatesHaveNoResult) {
  CounterSpec S = spec();
  Operation BadInc = inc(0);
  BadInc.Result = 1;
  EXPECT_FALSE(S.allowed({BadInc}));
}

TEST(CounterSpec, PrefixClosed) {
  CounterSpec S = spec();
  std::vector<Operation> Log = {inc(0, 1), inc(1, 2), rd(0, 1, 3), dec(0, 4),
                                rd(0, 0, 5)};
  ASSERT_TRUE(S.allowed(Log));
  for (size_t N = 0; N <= Log.size(); ++N)
    EXPECT_TRUE(S.allowed({Log.begin(), Log.begin() + N}));
}

TEST(CounterSpec, BlindUpdatesCommute) {
  CounterSpec S = spec();
  EXPECT_EQ(S.leftMoverHint(inc(0), inc(0)), Tri::Yes);
  EXPECT_EQ(S.leftMoverHint(inc(0), dec(0)), Tri::Yes);
  EXPECT_EQ(S.leftMoverHint(add(0, 2), inc(0)), Tri::Yes);
  EXPECT_EQ(S.leftMoverHint(inc(0), inc(1)), Tri::Yes);
}

TEST(CounterSpec, ReadsDoNotCommuteWithUpdates) {
  CounterSpec S = spec();
  // read=1 after inc cannot move before it (would need value 1 already).
  EXPECT_EQ(S.leftMoverHint(inc(0), rd(0, 1)), Tri::No);
  // read=0 then inc: swapping puts the read after the inc — wrong value.
  EXPECT_EQ(S.leftMoverHint(rd(0, 0), inc(0)), Tri::No);
  // Reads commute with reads.
  EXPECT_EQ(S.leftMoverHint(rd(0, 0), rd(0, 0)), Tri::Yes);
  // Reads commute with updates of *other* counters.
  EXPECT_EQ(S.leftMoverHint(rd(0, 0), inc(1)), Tri::Yes);
}

TEST(CounterSpec, HintAgreesWithSemantics) {
  EXPECT_EQ(hintDisagreements(spec()), std::vector<std::string>{});
}

TEST(CounterSpec, Completions) {
  CounterSpec S = spec();
  auto C = S.completionsFrom(S.initial(), {"c", "inc", {0}});
  ASSERT_EQ(C.size(), 1u);
  EXPECT_FALSE(C[0].Result.has_value());
  auto R = S.completionsFrom(S.denote({inc(0, 1)}), {"c", "read", {0}});
  ASSERT_EQ(R.size(), 1u);
  EXPECT_EQ(R[0].Result, Value(1));
}

TEST(CounterSpec, DomainChecks) {
  CounterSpec S = spec();
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"c", "inc", {5}}).empty());
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"c", "mul", {0}}).empty());
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"x", "inc", {0}}).empty());
}
