//===- tests/fig7_test.cpp - Figure 7: boosting/HTM interaction --------------===//
//
// The exact rule sequence of Figure 7, replayed step by step through the
// machine with every criterion checked:
//
//   Transaction begins.    PULL(all skiplist operations)
//                          APP(skiplist.insert(foo)), PUSH(...)
//                          APP(size++)
//                          PULL(all hashT operations)
//                          APP(hashT.map(foo=>bar)), PUSH(...)
//                          APP(x++)
//   Push HTM ops:          PUSH(size++), PUSH(x++)
//   HTM signals abort:     UNPUSH(x++), UNPUSH(size++)
//   Rewind some code:      UNAPP(x++)
//   March forward again:   APP(y++)
//   Uninterleaved commit:  PUSH(size++), PUSH(y++), CMT
//
// The distinctive behaviours: HTM effects are published *after* boosted
// effects that followed them locally (PUSH criterion (i) at work), and on
// abort the HTM batch is retracted while the expensive boosted effects
// stay in the shared log.
//
//===----------------------------------------------------------------------===//

#include "check/Serializability.h"
#include "lang/Parser.h"
#include "sim/Scheduler.h"
#include "spec/CompositeSpec.h"
#include "spec/CounterSpec.h"
#include "spec/MapSpec.h"
#include "spec/SetSpec.h"
#include "tm/HybridHtmBoostingTM.h"

#include <gtest/gtest.h>

#include <memory>

using namespace pushpull;

namespace {

std::shared_ptr<CompositeSpec> fig7Spec() {
  auto S = std::make_shared<CompositeSpec>();
  S->add("skiplist", std::make_shared<SetSpec>("skiplist", 4));
  S->add("hashT", std::make_shared<MapSpec>("hashT", 4, 4));
  S->add("size", std::make_shared<CounterSpec>("size", 1, 8));
  S->add("x", std::make_shared<CounterSpec>("x", 1, 8));
  S->add("y", std::make_shared<CounterSpec>("y", 1, 8));
  return S;
}

/// The Section 7 transaction: foo=1, bar=2.
CodePtr fig7Tx() {
  return parseOrDie("tx { s := skiplist.add(1); size.inc(0); "
                    "h := hashT.put(1, 2); (x.inc(0) + y.inc(0)) }");
}

} // namespace

TEST(Figure7, ExactRuleSequenceValidates) {
  auto Spec = fig7Spec();
  MoverChecker Movers(*Spec);
  PushPullMachine M(*Spec, Movers);
  TxId T = M.addThread({fig7Tx()});
  ASSERT_TRUE(M.beginTx(T));

  // APP(skiplist.insert(foo)), PUSH — boosted, eager.
  ASSERT_TRUE(M.app(T, 0, 0).Applied);
  ASSERT_TRUE(M.push(T, 0).Applied);
  // APP(size++) — HTM, deferred.
  ASSERT_TRUE(M.app(T, 0, 0).Applied);
  // APP(hashT.map(foo=>bar)), PUSH — boosted, eager.  The push happens
  // *after* the unpushed size++ in the local log: PUSH criterion (i)
  // requires hashT.put to move left of the buffered size++, which holds
  // across objects.
  ASSERT_TRUE(M.app(T, 0, 0).Applied);
  RuleResult PutPush = M.push(T, 2);
  ASSERT_TRUE(PutPush.Applied) << PutPush.toString();
  // APP(x++): take the left branch of (x.inc + y.inc).
  {
    auto Choices = M.appChoices(T);
    ASSERT_EQ(Choices.size(), 2u);
    ASSERT_EQ(Choices[0].Item.Call.Object, "x");
    ASSERT_TRUE(M.app(T, Choices[0].StepIdx, 0).Applied);
  }

  // Push HTM ops: PUSH(size++), PUSH(x++).
  ASSERT_TRUE(M.push(T, 1).Applied);
  ASSERT_TRUE(M.push(T, 3).Applied);
  ASSERT_EQ(M.global().size(), 4u);

  // HTM signals abort: UNPUSH(x++), UNPUSH(size++) — the boosted entries
  // stay in G.
  ASSERT_TRUE(M.unpush(T, 3).Applied);
  ASSERT_TRUE(M.unpush(T, 1).Applied);
  ASSERT_EQ(M.global().size(), 2u);
  EXPECT_EQ(M.global()[0].Op.Call.Object, "skiplist");
  EXPECT_EQ(M.global()[1].Op.Call.Object, "hashT");

  // Rewind some code: UNAPP(x++) only.
  ASSERT_TRUE(M.unapp(T).Applied);
  ASSERT_EQ(M.thread(T).L.size(), 3u);

  // March forward again: APP(y++) — the restored code re-offers the
  // choice; take the right branch this time.
  {
    auto Choices = M.appChoices(T);
    ASSERT_EQ(Choices.size(), 2u);
    ASSERT_EQ(Choices[1].Item.Call.Object, "y");
    ASSERT_TRUE(M.app(T, Choices[1].StepIdx, 0).Applied);
  }

  // Uninterleaved commit: PUSH(size++), PUSH(y++), CMT.
  ASSERT_TRUE(M.push(T, 1).Applied);
  ASSERT_TRUE(M.push(T, 3).Applied);
  ASSERT_TRUE(M.commit(T).Applied);

  // Final committed state: skiplist has foo, hashT maps foo->bar,
  // size = 1, y = 1, x = 0.
  StateSet Final = Spec->denote(M.committedLog());
  auto Expect = [&](const char *Obj, const char *Mth, std::vector<Value> A,
                    Value R) {
    auto Cs = Spec->completionsFrom(Final, {Obj, Mth, std::move(A)});
    ASSERT_EQ(Cs.size(), 1u);
    EXPECT_EQ(Cs[0].Result, R) << Obj << "." << Mth;
  };
  Expect("skiplist", "contains", {1}, 1);
  Expect("hashT", "get", {1}, 2);
  Expect("size", "read", {0}, 1);
  Expect("x", "read", {0}, 0);
  Expect("y", "read", {0}, 1);

  SerializabilityChecker Oracle(*Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);

  // The trace exhibits the Figure 7 signature.
  EXPECT_EQ(M.trace().countOf(RuleKind::UnPush), 2u);
  EXPECT_EQ(M.trace().countOf(RuleKind::UnApp), 1u);
  EXPECT_EQ(M.trace().countOf(RuleKind::Push), 6u);
}

TEST(Figure7, HybridEngineReproducesRetraction) {
  auto Spec = fig7Spec();
  MoverChecker Movers(*Spec);
  PushPullMachine M(*Spec, Movers);
  M.addThread({fig7Tx()});
  HybridConfig HC;
  HC.HtmObjects = {"size", "x", "y"};
  HC.ConflictChancePct = 100; // Force one injected HTM abort.
  HC.MaxInjectedPerTx = 1;
  HybridHtmBoostingTM E(M, HC);
  Scheduler Sched({SchedulePolicy::RoundRobin, 1, 50000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  EXPECT_EQ(E.htmRetractions(), 1u);
  EXPECT_GT(E.boostedOpsPreserved(), 0u)
      << "boosted effects must survive the HTM retraction";
  EXPECT_GT(St.ruleCount(RuleKind::UnPush), 0u);
  SerializabilityChecker Oracle(*Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}

TEST(Figure7, ConcurrentHybridThreadsSerializable) {
  auto Spec = fig7Spec();
  MoverChecker Movers(*Spec);
  PushPullMachine M(*Spec, Movers);
  // Two hybrid transactions touching overlapping boosted keys and the
  // same HTM counters.
  M.addThread({fig7Tx()});
  M.addThread({parseOrDie(
      "tx { s := skiplist.add(2); size.inc(0); (x.inc(0) + y.inc(0)) }")});
  HybridConfig HC;
  HC.HtmObjects = {"size", "x", "y"};
  HC.ConflictChancePct = 50;
  HC.Seed = 9;
  HybridHtmBoostingTM E(M, HC);
  Scheduler Sched({SchedulePolicy::RandomUniform, 9, 100000});
  RunStats St = Sched.run(E);
  ASSERT_TRUE(St.Quiescent);
  EXPECT_EQ(St.Commits, 2u);
  SerializabilityChecker Oracle(*Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}
