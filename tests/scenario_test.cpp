//===- tests/scenario_test.cpp - Scenario format + runner ---------------------===//

#include "sim/Scenario.h"

#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace pushpull;

namespace {

const char *Fig2Scenario = R"(
# Figure 2 in scenario form.
spec map name=map keys=8 vals=4
engine boosting seed=42
schedule random seed=7 maxsteps=100000
thread tx { a := map.put(1, 2) }; tx { b := map.get(1) }
thread tx { c := map.put(1, 3) }
check serializability
check opacity
check invariants
)";

} // namespace

TEST(ScenarioParse, Figure2Parses) {
  ScenarioParseResult R = parseScenario(Fig2Scenario);
  ASSERT_TRUE(R.ok()) << R.Error;
  const Scenario &S = *R.Parsed;
  EXPECT_EQ(S.Engine, "boosting");
  EXPECT_EQ(S.EngineOpts.at("seed"), "42");
  EXPECT_EQ(S.Threads.size(), 2u);
  EXPECT_EQ(S.Threads[0].size(), 2u) << "two transactions on thread 0";
  EXPECT_EQ(S.Checks.size(), 3u);
  EXPECT_EQ(S.ScheduleSeed, 7u);
  EXPECT_EQ(S.MaxSteps, 100000u);
}

TEST(ScenarioParse, CompositeFromMultipleSpecs) {
  ScenarioParseResult R = parseScenario(R"(
spec set name=skiplist keys=4
spec counter name=size counters=1 mod=8
engine hybrid htm=size conflictpct=100
thread tx { s := skiplist.add(1); size.inc(0) }
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_NE(R.Parsed->Spec->name().find("composite"), std::string::npos);
}

TEST(ScenarioParse, Errors) {
  EXPECT_FALSE(parseScenario("").ok());
  EXPECT_FALSE(parseScenario("spec map\n").ok()) << "no threads";
  EXPECT_FALSE(parseScenario("spec nosuch\nthread tx { skip }\n").ok());
  EXPECT_FALSE(
      parseScenario("spec map\nthread map.get(1)\n").ok())
      << "method outside a transaction";
  EXPECT_FALSE(parseScenario("spec map\nfrobnicate\n").ok());
  EXPECT_FALSE(
      parseScenario("spec map\nspec map\nthread tx { skip }\n").ok())
      << "duplicate object name";
  {
    ScenarioParseResult R =
        parseScenario("spec map\nthread tx { oops \n");
    ASSERT_FALSE(R.ok());
    EXPECT_EQ(R.ErrorLine, 2u);
  }
}

TEST(ScenarioParse, CommentsAndBlankLines) {
  ScenarioParseResult R = parseScenario(R"(
# leading comment

spec register regs=2 vals=2   # trailing comment
thread tx { v := register.read(0) }
)");
  ASSERT_TRUE(R.ok()) << R.Error;
}

TEST(FlattenTransactions, Shapes) {
  std::string Error;
  auto One = flattenTransactions(parseOrDie("tx { o.a() }"), Error);
  EXPECT_EQ(One.size(), 1u);
  auto Three = flattenTransactions(
      parseOrDie("tx { o.a() }; tx { o.b() }; tx { o.c() }"), Error);
  EXPECT_EQ(Three.size(), 3u);
  EXPECT_TRUE(Error.empty());
  auto Bad = flattenTransactions(parseOrDie("o.a(); tx { o.b() }"), Error);
  EXPECT_TRUE(Bad.empty());
  EXPECT_FALSE(Error.empty());
}

TEST(ScenarioRun, Figure2EndToEnd) {
  ScenarioParseResult R = parseScenario(Fig2Scenario);
  ASSERT_TRUE(R.ok()) << R.Error;
  ScenarioOutcome O = runScenario(*R.Parsed);
  EXPECT_TRUE(O.Ok);
  EXPECT_EQ(O.Stats.Commits, 3u);
  ASSERT_EQ(O.CheckResults.size(), 3u);
  EXPECT_EQ(O.CheckResults[0], "serializability: yes");
  EXPECT_NE(O.CheckResults[1].find("in the opaque fragment"),
            std::string::npos);
  EXPECT_EQ(O.CheckResults[2], "invariants: hold");
  EXPECT_FALSE(O.Trace.empty());
}

TEST(ScenarioRun, EveryEngineRunsTheRegisterScenario) {
  for (const char *Engine :
       {"optimistic", "checkpoint", "boosting", "pessimistic", "irrevocable",
        "dependent", "early-release", "htm", "htm-word"}) {
    std::string Text = std::string(R"(
spec register name=mem regs=2 vals=2
engine )") + Engine + R"(
schedule random seed=5 maxsteps=200000
thread tx { v := mem.read(0); mem.write(1, 1) }
thread tx { mem.write(0, 1) }
check serializability-any
)";
    ScenarioParseResult R = parseScenario(Text);
    ASSERT_TRUE(R.ok()) << Engine << ": " << R.Error;
    ScenarioOutcome O = runScenario(*R.Parsed);
    EXPECT_TRUE(O.Ok) << Engine << " failed: "
                      << (O.CheckResults.empty() ? "no checks"
                                                 : O.CheckResults[0]);
  }
}

TEST(ScenarioRun, HybridScenario) {
  ScenarioParseResult R = parseScenario(R"(
spec set name=skiplist keys=4
spec counter name=size counters=1 mod=8
engine hybrid htm=size conflictpct=100 seed=3
schedule roundrobin seed=1 maxsteps=100000
thread tx { s := skiplist.add(1); size.inc(0) }
thread tx { t := skiplist.add(2); size.inc(0) }
check serializability
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  ScenarioOutcome O = runScenario(*R.Parsed);
  EXPECT_TRUE(O.Ok) << (O.CheckResults.empty() ? "?" : O.CheckResults[0]);
  EXPECT_EQ(O.Stats.Commits, 2u);
}

TEST(ScenarioRun, UnknownEngineReportsError) {
  ScenarioParseResult R = parseScenario(R"(
spec register regs=1 vals=2
engine quantum
thread tx { v := register.read(0) }
)");
  ASSERT_TRUE(R.ok());
  ScenarioOutcome O = runScenario(*R.Parsed);
  EXPECT_FALSE(O.Ok);
}

TEST(ScenarioRun, BankScenario) {
  ScenarioParseResult R = parseScenario(R"(
spec bank accounts=2 cap=4 initial=2
engine boosting seed=9
thread tx { bank.deposit(0, 1) }; tx { r := bank.withdraw(1, 1) }
thread tx { b := bank.balance(0) }
check serializability
check invariants
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  ScenarioOutcome O = runScenario(*R.Parsed);
  EXPECT_TRUE(O.Ok) << (O.CheckResults.empty() ? "?" : O.CheckResults[0]);
}

TEST(ScenarioRun, AuditRecordsCriteria) {
  ScenarioParseResult R = parseScenario(Fig2Scenario);
  ASSERT_TRUE(R.ok()) << R.Error;
  ScenarioOutcome O = runScenario(*R.Parsed);
  ASSERT_TRUE(O.Ok);
  EXPECT_NE(O.Audit.find("PUSH criterion (ii)"), std::string::npos);
  EXPECT_NE(O.Audit.find("CMT criterion (iii)"), std::string::npos);
  EXPECT_EQ(O.Audit.find("rejected"), std::string::npos)
      << "the audit records applied rules only";
}

TEST(ScenarioRun, PctSchedulePolicy) {
  ScenarioParseResult R = parseScenario(R"(
spec register name=mem regs=2 vals=2
engine optimistic seed=2
schedule pct seed=6 maxsteps=200000 changepoints=2
thread tx { v := mem.read(0); mem.write(1, 1) }
thread tx { mem.write(0, 1) }
check serializability
)");
  ASSERT_TRUE(R.ok()) << R.Error;
  EXPECT_EQ(R.Parsed->Policy, SchedulePolicy::PriorityChangePoints);
  EXPECT_EQ(R.Parsed->ChangePoints, 2u);
  ScenarioOutcome O = runScenario(*R.Parsed);
  EXPECT_TRUE(O.Ok) << (O.CheckResults.empty() ? "?" : O.CheckResults[0]);
}
