//===- tests/atomic_test.cpp - Figure 3 atomic semantics --------------------===//

#include "core/Atomic.h"

#include "TestUtil.h"
#include "lang/Parser.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"

#include <gtest/gtest.h>

using namespace pushpull;
using testutil::mkOp;

TEST(Atomic, StraightLineSingleOutcome) {
  RegisterSpec S("mem", 2, 3);
  AtomicMachine A(S);
  CodePtr C = parseOrDie("mem.write(0, 2); v := mem.read(0)");
  auto Outs = A.bigStep(C, Stack(), {});
  ASSERT_EQ(Outs.size(), 1u);
  EXPECT_EQ(Outs[0].Sigma.getOrDie("v"), 2);
  ASSERT_EQ(Outs[0].Log.size(), 2u);
  EXPECT_EQ(Outs[0].Log[1].Result, Value(2));
}

TEST(Atomic, ResultsFlowThroughStack) {
  RegisterSpec S("mem", 2, 3);
  AtomicMachine A(S);
  CodePtr C = parseOrDie("mem.write(0, 2); v := mem.read(0); mem.write(1, v)");
  auto Outs = A.bigStep(C, Stack(), {});
  ASSERT_EQ(Outs.size(), 1u);
  // Register 1 ends holding register 0's value.
  EXPECT_EQ(Outs[0].Log[2].Call.Args, (std::vector<Value>{1, 2}));
}

TEST(Atomic, ChoiceEnumeratesBothBranches) {
  RegisterSpec S("mem", 1, 3);
  AtomicMachine A(S);
  CodePtr C = parseOrDie("mem.write(0, 1) + mem.write(0, 2)");
  auto Outs = A.bigStep(C, Stack(), {});
  EXPECT_EQ(Outs.size(), 2u);
}

TEST(Atomic, LoopOutcomesBounded) {
  RegisterSpec S("mem", 1, 2);
  AtomicLimits Limits;
  Limits.MaxOpsPerTx = 3;
  AtomicMachine A(S, Limits);
  CodePtr C = parseOrDie("(mem.write(0, 1))*");
  auto Outs = A.bigStep(C, Stack(), {});
  // 0, 1, 2 or 3 iterations.
  EXPECT_EQ(Outs.size(), 4u);
}

TEST(Atomic, SkipHasExactlyOneOutcome) {
  RegisterSpec S("mem", 1, 2);
  AtomicMachine A(S);
  auto Outs = A.bigStep(skip(), Stack(), {});
  ASSERT_EQ(Outs.size(), 1u);
  EXPECT_TRUE(Outs[0].Log.empty());
}

TEST(Atomic, StuckPathsProduceNoOutcome) {
  RegisterSpec S("mem", 1, 2);
  AtomicMachine A(S);
  // Out-of-domain write: the only path is stuck, no outcomes.
  auto Outs = A.bigStep(parseOrDie("mem.write(7, 1)"), Stack(), {});
  EXPECT_TRUE(Outs.empty());
  EXPECT_FALSE(A.canRun(parseOrDie("mem.write(7, 1)"), Stack(), {}));
  // But a choice with one viable branch still completes.
  EXPECT_TRUE(
      A.canRun(parseOrDie("mem.write(7, 1) + mem.write(0, 1)"), Stack(), {}));
}

TEST(Atomic, LogPrefixRespected) {
  RegisterSpec S("mem", 1, 3);
  AtomicMachine A(S);
  std::vector<Operation> Base = {mkOp(100, "mem", "write", {0, 2}, 2)};
  auto Outs = A.bigStep(parseOrDie("v := mem.read(0)"), Stack(), Base);
  ASSERT_EQ(Outs.size(), 1u);
  EXPECT_EQ(Outs[0].Sigma.getOrDie("v"), 2) << "reads see the base log";
  EXPECT_EQ(Outs[0].Log.size(), 2u) << "outcome includes the base prefix";
}

TEST(Atomic, SearchSerialRunsInOrder) {
  SetSpec S("set", 2);
  AtomicMachine A(S);
  std::vector<AtomicTx> Txs = {
      {parseOrDie("a := set.add(1)"), Stack()},
      {parseOrDie("b := set.add(1)"), Stack()},
  };
  std::vector<std::vector<Value>> Results;
  A.searchSerial(Txs, {}, [&](const AtomicOutcome &O) {
    std::vector<Value> Rs;
    for (const Operation &Op : O.Log)
      Rs.push_back(*Op.Result);
    Results.push_back(Rs);
    return false;
  });
  // Exactly one serial outcome: first add succeeds, second fails.
  ASSERT_EQ(Results.size(), 1u);
  EXPECT_EQ(Results[0], (std::vector<Value>{1, 0}));
}

TEST(Atomic, SearchSerialEarlyExit) {
  RegisterSpec S("mem", 1, 3);
  AtomicMachine A(S);
  std::vector<AtomicTx> Txs = {
      {parseOrDie("mem.write(0, 1) + mem.write(0, 2)"), Stack()},
  };
  int Seen = 0;
  bool Found = A.searchSerial(Txs, {}, [&](const AtomicOutcome &) {
    ++Seen;
    return true; // Stop at the first outcome.
  });
  EXPECT_TRUE(Found);
  EXPECT_EQ(Seen, 1);
}

TEST(Atomic, SearchSerialThreadsStacksPerTransaction) {
  RegisterSpec S("mem", 2, 3);
  AtomicMachine A(S);
  Stack Sig1;
  Sig1.set("v", 2);
  std::vector<AtomicTx> Txs = {
      {parseOrDie("mem.write(0, v)"), Sig1},
      {parseOrDie("w := mem.read(0)"), Stack()},
  };
  bool Found = A.searchSerial(Txs, {}, [&](const AtomicOutcome &O) {
    return O.Log.size() == 2 && O.Log[1].Result == Value(2);
  });
  EXPECT_TRUE(Found);
}

TEST(Atomic, OutcomeCapTruncates) {
  RegisterSpec S("mem", 1, 2);
  AtomicLimits Limits;
  Limits.MaxOutcomes = 2;
  AtomicMachine A(S, Limits);
  CodePtr C = parseOrDie("(mem.write(0, 1))*");
  auto Outs = A.bigStep(C, Stack(), {});
  EXPECT_LE(Outs.size(), 2u);
}
