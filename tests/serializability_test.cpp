//===- tests/serializability_test.cpp - Theorem 5.17 oracle -----------------===//

#include "check/Serializability.h"

#include "TestUtil.h"
#include "lang/Parser.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"

#include <gtest/gtest.h>

using namespace pushpull;

namespace {

/// Drive a two-thread interleaved run by hand and return the machine.
PushPullMachine interleavedSetRun(const SetSpec &Spec, MoverChecker &Movers) {
  PushPullMachine M(Spec, Movers);
  TxId T0 = M.addThread({parseOrDie("tx { a := set.add(0); b := set.add(1) }")});
  TxId T1 = M.addThread({parseOrDie("tx { c := set.add(2); d := set.remove(0) }")});
  EXPECT_TRUE(M.beginTx(T0));
  EXPECT_TRUE(M.beginTx(T1));
  EXPECT_TRUE(M.app(T0, 0, 0).Applied);
  EXPECT_TRUE(M.push(T0, 0).Applied);
  EXPECT_TRUE(M.app(T1, 0, 0).Applied);
  EXPECT_TRUE(M.push(T1, 0).Applied);
  EXPECT_TRUE(M.app(T0, 0, 0).Applied);
  EXPECT_TRUE(M.push(T0, 1).Applied);
  EXPECT_TRUE(M.commit(T0).Applied);
  // T1 must see T0's committed remove(0) effect... pull it to stay
  // consistent before removing 0 (the add(0) was committed by T0).
  for (size_t GI = 0; GI < M.global().size(); ++GI)
    if (M.global()[GI].Kind == GlobalKind::Committed &&
        !M.thread(T1).L.contains(M.global()[GI].Op.Id))
      M.pull(T1, GI);
  EXPECT_TRUE(M.app(T1, 0, 0).Applied);
  EXPECT_TRUE(M.push(T1, M.thread(T1).L.size() - 1).Applied);
  EXPECT_TRUE(M.commit(T1).Applied);
  return M;
}

} // namespace

TEST(Oracle, EmptyRunSerializable) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}

TEST(Oracle, InterleavedCriteriaRunIsSerializable) {
  SetSpec Spec("set", 3);
  MoverChecker Movers(Spec);
  PushPullMachine M = interleavedSetRun(Spec, Movers);
  SerializabilityChecker Oracle(Spec);
  SerializabilityVerdict V = Oracle.checkCommitOrder(M);
  EXPECT_EQ(V.Serializable, Tri::Yes) << V.Detail;
  ASSERT_EQ(V.WitnessOrder.size(), 2u);
  EXPECT_EQ(V.WitnessOrder[0], 0u) << "commit order is the witness";
}

TEST(Oracle, NonSerializableCommittedLogRefused) {
  // Bypass the criteria (Trusting mode) to manufacture the classic
  // write-skew-like anomaly: T0 reads 0, T1 writes 1 and commits, then T0
  // publishes its stale read and commits.  No serial order of
  // { read(0)=0 } and { write(0,1) } yields the committed log
  // [read=0 ... write=1] *with T0 serialized after T1*... in fact commit
  // order (T1 then T0) requires read(0)=1.  Any-order search still finds
  // T0-before-T1, so use a shape impossible in every order: T0 reads 0
  // and also reads 1 around T1's committed write.
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  MachineConfig MC;
  MC.Level = ValidationLevel::Trusting;
  PushPullMachine M(Spec, Movers, MC);
  TxId T0 =
      M.addThread({parseOrDie("tx { v := mem.read(0); w := mem.read(0) }")});
  TxId T1 = M.addThread({parseOrDie("tx { mem.write(0, 1) }")});
  ASSERT_TRUE(M.beginTx(T0));
  ASSERT_TRUE(M.beginTx(T1));
  // T0 reads 0 (initial), publishes.
  ASSERT_TRUE(M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(M.push(T0, 0).Applied);
  // T1 writes 1, publishes, commits.
  ASSERT_TRUE(M.app(T1, 0, 0).Applied);
  ASSERT_TRUE(M.push(T1, 0).Applied);
  ASSERT_TRUE(M.commit(T1).Applied);
  // T0 now *sees* the write (pull) and reads 1 — a non-repeatable read.
  ASSERT_TRUE(M.pull(T0, M.global().size() - 1).Applied);
  ASSERT_TRUE(M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(M.push(T0, M.thread(T0).L.size() - 1).Applied);
  ASSERT_TRUE(M.commit(T0).Applied);

  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::No);
  EXPECT_EQ(Oracle.checkAnyOrder(M).Serializable, Tri::No)
      << "no serial order explains reading both 0 and 1";
}

TEST(Oracle, AnyOrderFindsNonCommitOrderWitness) {
  // T0 commits *after* T1 but must serialize before it: T0 reads 0
  // staleness-free only before T1's write.  With criteria enforced this
  // cannot happen (push would be rejected), so build it in Trusting mode
  // with the read pushed before the write exists — then commit T1 first.
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  MachineConfig MC;
  MC.Level = ValidationLevel::Trusting;
  PushPullMachine M(Spec, Movers, MC);
  TxId T0 = M.addThread({parseOrDie("tx { v := mem.read(0) }")});
  TxId T1 = M.addThread({parseOrDie("tx { mem.write(0, 1) }")});
  ASSERT_TRUE(M.beginTx(T0));
  ASSERT_TRUE(M.beginTx(T1));
  ASSERT_TRUE(M.app(T0, 0, 0).Applied); // read(0)=0
  ASSERT_TRUE(M.push(T0, 0).Applied);
  ASSERT_TRUE(M.app(T1, 0, 0).Applied);
  ASSERT_TRUE(M.push(T1, 0).Applied);
  ASSERT_TRUE(M.commit(T1).Applied); // T1 commits first...
  ASSERT_TRUE(M.commit(T0).Applied); // ...then T0.

  SerializabilityChecker Oracle(Spec);
  // Commit order (T1; T0) cannot produce read(0)=0 after write(0,1) at
  // the *end* of the atomic log, but the committed log is
  // [read=0, write=1], which T0-then-T1 produces exactly.
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::No);
  SerializabilityVerdict V = Oracle.checkAnyOrder(M);
  EXPECT_EQ(V.Serializable, Tri::Yes);
  ASSERT_EQ(V.WitnessOrder.size(), 2u);
  EXPECT_EQ(V.WitnessOrder[0], T0);
}

TEST(Oracle, PrecongruenceNotEqualityOfLogs) {
  // The committed log need not equal the atomic log op-for-op — ids and
  // stacks differ; precongruence over denotations is what matters.
  SetSpec Spec("set", 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  TxId T = M.addThread({parseOrDie("tx { a := set.add(1) }")});
  ASSERT_TRUE(M.beginTx(T));
  ASSERT_TRUE(M.app(T, 0, 0).Applied);
  ASSERT_TRUE(M.push(T, 0).Applied);
  ASSERT_TRUE(M.commit(T).Applied);
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}

TEST(Oracle, TooManyTxsForPermutationSearch) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  for (int I = 0; I < 9; ++I) {
    TxId T = M.addThread({parseOrDie("tx { skip }")});
    ASSERT_TRUE(M.beginTx(T));
    ASSERT_TRUE(M.commit(T).Applied);
  }
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkAnyOrder(M, 7).Serializable, Tri::Unknown);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}
