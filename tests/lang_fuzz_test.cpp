//===- tests/lang_fuzz_test.cpp - Randomized printer/parser round-trips -------===//
//
// Generate random code trees, print them, reparse, and require structural
// equality — plus step()/fin() consistency laws on the generated trees:
//
//   * fin(c) agrees between a tree and its printed-reparsed image;
//   * every step(c) continuation is itself printable and reparseable;
//   * step() of a finite tree terminates with finitely many items whose
//     calls all appear among the tree's reachable methods.
//
//===----------------------------------------------------------------------===//

#include "lang/Parser.h"
#include "lang/Printer.h"
#include "lang/StepFin.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace pushpull;

namespace {

/// Random code tree of depth <= Depth.
CodePtr randomCode(Rng &R, unsigned Depth) {
  // Bias leaves when the budget runs out.
  unsigned Kind = Depth == 0 ? R.below(2) : R.below(6);
  switch (Kind) {
  case 0:
    return skip();
  case 1: {
    std::vector<Arg> Args;
    for (uint64_t I = R.below(3); I > 0; --I) {
      if (R.chance(1, 3))
        Args.push_back(Arg(std::string("v") + std::to_string(R.below(3))));
      else
        Args.push_back(Arg(static_cast<Value>(R.range(-4, 9))));
    }
    std::optional<std::string> ResultVar;
    if (R.chance(1, 2))
      ResultVar = "r" + std::to_string(R.below(4));
    std::string Obj = R.chance(1, 2) ? "alpha" : "beta";
    std::string Mth = R.chance(1, 2) ? "foo" : "bar";
    return call(Obj, Mth, std::move(Args), std::move(ResultVar));
  }
  case 2:
    return seq(randomCode(R, Depth - 1), randomCode(R, Depth - 1));
  case 3:
    return choice(randomCode(R, Depth - 1), randomCode(R, Depth - 1));
  case 4:
    return loop(randomCode(R, Depth - 1));
  default:
    return tx(randomCode(R, Depth - 1));
  }
}

} // namespace

class LangFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LangFuzzTest, PrintParseRoundTrip) {
  Rng R(GetParam());
  for (int Trial = 0; Trial < 200; ++Trial) {
    CodePtr C = randomCode(R, 4);
    std::string Printed = printCode(C);
    ParseResult PR = parseCode(Printed);
    ASSERT_TRUE(PR.ok()) << "failed to reparse: " << Printed << " -- "
                         << PR.Error;
    EXPECT_TRUE(codeEquals(C, PR.Parsed))
        << "round trip changed structure: " << Printed << " vs "
        << printCode(PR.Parsed);
  }
}

TEST_P(LangFuzzTest, FinStableUnderRoundTrip) {
  Rng R(GetParam() * 131 + 7);
  for (int Trial = 0; Trial < 200; ++Trial) {
    CodePtr C = randomCode(R, 4);
    CodePtr C2 = parseOrDie(printCode(C));
    EXPECT_EQ(fin(C), fin(C2));
  }
}

TEST_P(LangFuzzTest, StepItemsWellFormed) {
  Rng R(GetParam() * 977 + 3);
  for (int Trial = 0; Trial < 100; ++Trial) {
    CodePtr C = randomCode(R, 4);
    std::vector<MethodExpr> Reachable = reachableMethods(C);
    for (const StepItem &It : step(C)) {
      // The stepped call must be one of the reachable methods.
      bool Found = false;
      for (const MethodExpr &ME : Reachable)
        Found = Found || (ME.Object == It.Call.Object &&
                          ME.Method == It.Call.Method &&
                          ME.Args == It.Call.Args &&
                          ME.ResultVar == It.Call.ResultVar);
      EXPECT_TRUE(Found) << It.Call.toString() << " not reachable in "
                         << printCode(C);
      // Continuations print and reparse.
      ASSERT_NE(It.Rest, nullptr);
      EXPECT_TRUE(parseCode(printCode(It.Rest)).ok());
    }
  }
}

TEST_P(LangFuzzTest, StepOfFinishableSkipFreePathsConsistent) {
  // If step(c) is empty and fin(c) is false the program is wedged; our
  // generator cannot produce such trees (calls always step), so check
  // the invariant: step(c).empty() implies fin(c).
  Rng R(GetParam() * 31337 + 11);
  for (int Trial = 0; Trial < 200; ++Trial) {
    CodePtr C = randomCode(R, 4);
    if (step(C).empty())
      EXPECT_TRUE(fin(C)) << printCode(C);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LangFuzzTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));
