//===- tests/lang_test.cpp - AST / step / fin / parser / printer ------------===//

#include "lang/Ast.h"
#include "lang/Parser.h"
#include "lang/Printer.h"
#include "lang/StepFin.h"

#include <gtest/gtest.h>

using namespace pushpull;

namespace {

CodePtr m(const std::string &Name) { return call("o", Name, {}); }

/// Names of the methods step(c) can reach next.
std::vector<std::string> nextMethods(const CodePtr &C) {
  std::vector<std::string> Out;
  for (const StepItem &It : step(C))
    Out.push_back(It.Call.Method);
  std::sort(Out.begin(), Out.end());
  return Out;
}

} // namespace

TEST(Fin, Table) {
  // fin(skip) = true, fin(m) = false.
  EXPECT_TRUE(fin(skip()));
  EXPECT_FALSE(fin(m("a")));
  // fin(c1;c2) = fin(c1) /\ fin(c2).
  EXPECT_TRUE(fin(seq(skip(), skip())));
  EXPECT_FALSE(fin(seq(skip(), m("a"))));
  EXPECT_FALSE(fin(seq(m("a"), skip())));
  // fin(c1+c2) = fin(c1) \/ fin(c2).
  EXPECT_TRUE(fin(choice(m("a"), skip())));
  EXPECT_TRUE(fin(choice(skip(), m("a"))));
  EXPECT_FALSE(fin(choice(m("a"), m("b"))));
  // fin((c)*) = true.
  EXPECT_TRUE(fin(loop(m("a"))));
  // fin(tx c) = fin(c).
  EXPECT_TRUE(fin(tx(skip())));
  EXPECT_FALSE(fin(tx(m("a"))));
}

TEST(Step, SkipIsEmpty) { EXPECT_TRUE(step(skip()).empty()); }

TEST(Step, MethodStepsToSkip) {
  auto S = step(m("a"));
  ASSERT_EQ(S.size(), 1u);
  EXPECT_EQ(S[0].Call.Method, "a");
  EXPECT_EQ(S[0].Rest->kind(), CodeKind::Skip);
}

TEST(Step, ChoiceUnions) {
  EXPECT_EQ(nextMethods(choice(m("a"), m("b"))),
            (std::vector<std::string>{"a", "b"}));
}

TEST(Step, SeqSkipsFinishableHead) {
  // step(c1;c2) includes step(c2) when fin(c1).
  EXPECT_EQ(nextMethods(seq(skip(), m("b"))),
            (std::vector<std::string>{"b"}));
  EXPECT_EQ(nextMethods(seq(choice(skip(), m("a")), m("b"))),
            (std::vector<std::string>{"a", "b"}));
  // ...but not when fin(c1) is false.
  EXPECT_EQ(nextMethods(seq(m("a"), m("b"))),
            (std::vector<std::string>{"a"}));
}

TEST(Step, SeqKeepsContinuation) {
  auto S = step(seq(m("a"), m("b")));
  ASSERT_EQ(S.size(), 1u);
  // Continuation is skip; b.
  EXPECT_EQ(nextMethods(S[0].Rest), (std::vector<std::string>{"b"}));
}

TEST(Step, LoopUnrollsOnce) {
  auto S = step(loop(m("a")));
  ASSERT_EQ(S.size(), 1u);
  // Continuation is skip ; (a)* — can run a again.
  EXPECT_EQ(nextMethods(S[0].Rest), (std::vector<std::string>{"a"}));
  EXPECT_TRUE(fin(S[0].Rest));
}

TEST(Step, TxTransparent) {
  EXPECT_EQ(nextMethods(tx(choice(m("a"), m("b")))),
            (std::vector<std::string>{"a", "b"}));
}

TEST(Step, PaperExample) {
  // Section 3: c = tx (skip ; (c1 + (m + n)) ; c2) — one path reaches
  // method n with continuation c2.
  CodePtr C1 = m("c1");
  CodePtr C2 = m("c2");
  CodePtr C = tx(seq(seq(skip(), choice(C1, choice(m("m"), m("n")))), C2));
  bool FoundN = false;
  for (const StepItem &It : step(C)) {
    if (It.Call.Method != "n")
      continue;
    FoundN = true;
    EXPECT_EQ(nextMethods(It.Rest), (std::vector<std::string>{"c2"}));
  }
  EXPECT_TRUE(FoundN);
}

TEST(ReachableMethods, CollectsAllSubterms) {
  CodePtr C = tx(seq(choice(m("a"), m("b")), loop(m("c"))));
  auto Ms = reachableMethods(C);
  std::vector<std::string> Names;
  for (const MethodExpr &ME : Ms)
    Names.push_back(ME.Method);
  std::sort(Names.begin(), Names.end());
  EXPECT_EQ(Names, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(MethodExpr, ResolveLiteralsAndVars) {
  MethodExpr ME;
  ME.Object = "map";
  ME.Method = "put";
  ME.Args = {Arg(Value(3)), Arg(std::string("v"))};
  Stack S;
  EXPECT_FALSE(ME.resolve(S).has_value());
  S.set("v", 9);
  auto RC = ME.resolve(S);
  ASSERT_TRUE(RC.has_value());
  EXPECT_EQ(RC->Object, "map");
  EXPECT_EQ(RC->Method, "put");
  EXPECT_EQ(RC->Args, (std::vector<Value>{3, 9}));
}

TEST(CodeEquality, Structural) {
  EXPECT_TRUE(codeEquals(skip(), skip()));
  EXPECT_TRUE(codeEquals(seq(m("a"), m("b")), seq(m("a"), m("b"))));
  EXPECT_FALSE(codeEquals(seq(m("a"), m("b")), seq(m("b"), m("a"))));
  EXPECT_FALSE(codeEquals(m("a"), loop(m("a"))));
  EXPECT_TRUE(codeEquals(tx(m("a")), tx(m("a"))));
}

TEST(Parser, Skip) {
  auto R = parseCode("skip");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Parsed->kind(), CodeKind::Skip);
}

TEST(Parser, SimpleCall) {
  auto R = parseCode("set.add(3)");
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Parsed->kind(), CodeKind::Call);
  EXPECT_EQ(R.Parsed->call().Object, "set");
  EXPECT_EQ(R.Parsed->call().Method, "add");
  ASSERT_EQ(R.Parsed->call().Args.size(), 1u);
  EXPECT_EQ(std::get<Value>(R.Parsed->call().Args[0]), 3);
}

TEST(Parser, ResultBinding) {
  auto R = parseCode("v := map.get(2)");
  ASSERT_TRUE(R.ok());
  ASSERT_EQ(R.Parsed->kind(), CodeKind::Call);
  ASSERT_TRUE(R.Parsed->call().ResultVar.has_value());
  EXPECT_EQ(*R.Parsed->call().ResultVar, "v");
}

TEST(Parser, VariableArgs) {
  auto R = parseCode("map.put(1, v)");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(std::get<std::string>(R.Parsed->call().Args[1]), "v");
}

TEST(Parser, NegativeLiteral) {
  auto R = parseCode("c.add(0, -3)");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(std::get<Value>(R.Parsed->call().Args[1]), -3);
}

TEST(Parser, PrecedenceChoiceLoosest) {
  // a() ; b() + c() parses as (a;b) + c.
  auto R = parseCode("o.a(); o.b() + o.c()");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Parsed->kind(), CodeKind::Choice);
  EXPECT_EQ(R.Parsed->lhs()->kind(), CodeKind::Seq);
}

TEST(Parser, StarPostfix) {
  auto R = parseCode("(o.a())*");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Parsed->kind(), CodeKind::Loop);
}

TEST(Parser, TxBlock) {
  auto R = parseCode("tx { o.a(); o.b() }");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Parsed->kind(), CodeKind::Tx);
  EXPECT_EQ(R.Parsed->body()->kind(), CodeKind::Seq);
}

TEST(Parser, Comments) {
  auto R = parseCode("// leading comment\n o.a() // trailing\n");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Parsed->kind(), CodeKind::Call);
}

TEST(Parser, Errors) {
  EXPECT_FALSE(parseCode("").ok());
  EXPECT_FALSE(parseCode("tx {").ok());
  EXPECT_FALSE(parseCode("o.a(").ok());
  EXPECT_FALSE(parseCode("o.a() extra").ok());
  EXPECT_FALSE(parseCode("o.a() +").ok());
  EXPECT_FALSE(parseCode("(o.a()").ok());
  EXPECT_FALSE(parseCode("x := := o.a()").ok());
  for (const char *Bad : {"", "tx {", "o.a("}) {
    auto R = parseCode(Bad);
    EXPECT_FALSE(R.Error.empty()) << Bad;
  }
}

TEST(Printer, RoundTripsThroughParser) {
  const char *Programs[] = {
      "skip",
      "set.add(3)",
      "v := map.get(2)",
      "tx { o.a(); o.b() }",
      "o.a() + o.b(); o.c()",
      "(o.a() + skip)*",
      "tx { v := set.add(1); (ctr.inc(0) + skip); (set.contains(1))* }",
  };
  for (const char *P : Programs) {
    CodePtr C = parseOrDie(P);
    std::string Printed = printCode(C);
    auto Re = parseCode(Printed);
    ASSERT_TRUE(Re.ok()) << "reparse failed: " << Printed;
    EXPECT_TRUE(codeEquals(C, Re.Parsed))
        << "round-trip changed: " << P << " -> " << Printed;
  }
}

TEST(SeqAll, BuildsRightNestedSequence) {
  EXPECT_EQ(seqAll({})->kind(), CodeKind::Skip);
  EXPECT_TRUE(codeEquals(seqAll({m("a")}), m("a")));
  EXPECT_TRUE(
      codeEquals(seqAll({m("a"), m("b"), m("c")}),
                 seq(m("a"), seq(m("b"), m("c")))));
}
