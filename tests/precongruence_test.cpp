//===- tests/precongruence_test.cpp - Definition 3.1 ------------------------===//
//
// Laws of the shared-log precongruence: reflexivity, transitivity
// (Lemma 5.2), closure under append (Lemma 5.3), the interplay with
// left-movers (Lemma 5.1), observational coarseness (unobservable state
// differences are permitted — the point of the coinductive definition),
// and resource-bounded Unknown answers.
//
//===----------------------------------------------------------------------===//

#include "core/Precongruence.h"

#include "TestUtil.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"

#include <gtest/gtest.h>

using namespace pushpull;
using testutil::mkOp;

namespace {

Operation rd(Value R, Value V, OpId Id = 1) {
  return mkOp(Id, "mem", "read", {R}, V);
}
Operation wr(Value R, Value V, OpId Id = 1) {
  return mkOp(Id, "mem", "write", {R, V}, V);
}

/// A spec with a hidden bit that no observation can see: "flip" toggles
/// it, "obs" always returns 0.  Distinct states, identical behaviours —
/// exercises that precongruence is *observational*, not state equality.
class HiddenBitSpec : public SequentialSpec {
public:
  std::string name() const override { return "hiddenbit"; }
  std::vector<State> initialStates() const override { return {"0"}; }
  std::vector<State> successors(const State &S,
                                const Operation &Op) const override {
    if (Op.Call.Method == "flip")
      return {S == "0" ? "1" : "0"};
    if (Op.Call.Method == "obs") {
      if (!Op.Result || *Op.Result != 0)
        return {};
      return {S};
    }
    return {};
  }
  std::vector<Completion> completions(const State &,
                                      const ResolvedCall &Call)
      const override {
    if (Call.Method == "flip")
      return {Completion{std::nullopt}};
    if (Call.Method == "obs")
      return {Completion{Value(0)}};
    return {};
  }
  std::vector<Operation> probeOps() const override {
    return {mkOp(0, "h", "flip"), mkOp(0, "h", "obs", {}, 0)};
  }
};

/// A nondeterministic spec: "toss" scatters the state to {H, T}; "peek"
/// observes it.  [toss] admits strictly more behaviours than [].
class CoinSpec : public SequentialSpec {
public:
  std::string name() const override { return "coin"; }
  std::vector<State> initialStates() const override { return {"H"}; }
  std::vector<State> successors(const State &S,
                                const Operation &Op) const override {
    if (Op.Call.Method == "toss")
      return {"H", "T"};
    if (Op.Call.Method == "peek") {
      if (!Op.Result)
        return {};
      if ((S == "H") != (*Op.Result == 0))
        return {};
      return {S};
    }
    return {};
  }
  std::vector<Completion> completions(const State &S,
                                      const ResolvedCall &Call)
      const override {
    if (Call.Method == "toss")
      return {Completion{std::nullopt}};
    if (Call.Method == "peek")
      return {Completion{S == "H" ? Value(0) : Value(1)}};
    return {};
  }
  std::vector<Operation> probeOps() const override {
    return {mkOp(0, "c", "toss"), mkOp(0, "c", "peek", {}, 0),
            mkOp(0, "c", "peek", {}, 1)};
  }
};

} // namespace

TEST(Precongruence, Reflexive) {
  RegisterSpec S("mem", 2, 2);
  PrecongruenceChecker P(S);
  EXPECT_EQ(P.checkLogs({}, {}), Tri::Yes);
  EXPECT_EQ(P.checkLogs({wr(0, 1, 1)}, {wr(0, 1, 2)}), Tri::Yes);
}

TEST(Precongruence, DisallowedLeftIsBottom) {
  RegisterSpec S("mem", 2, 2);
  PrecongruenceChecker P(S);
  // A disallowed log is =< everything (allowed l1 never holds).
  EXPECT_EQ(P.checkLogs({rd(0, 1)}, {}), Tri::Yes);
  // ...and nothing allowed is =< a disallowed log.
  EXPECT_EQ(P.checkLogs({}, {rd(0, 1)}), Tri::No);
}

TEST(Precongruence, DistinguishableStatesRefuted) {
  RegisterSpec S("mem", 2, 2);
  PrecongruenceChecker P(S);
  // write(0,1) vs empty: a read probe distinguishes them.
  EXPECT_EQ(P.checkLogs({wr(0, 1)}, {}), Tri::No);
  EXPECT_EQ(P.checkLogs({}, {wr(0, 1)}), Tri::No);
  // Same final state, different paths: equivalent.
  EXPECT_EQ(P.checkLogs({wr(0, 1, 1), wr(0, 0, 2)}, {wr(1, 1, 1), wr(1, 0, 2)}),
            Tri::Yes);
}

TEST(Precongruence, Lemma52Transitivity) {
  // Sampled transitivity: for logs a =< b and b =< c, check a =< c.
  RegisterSpec S("mem", 1, 3);
  PrecongruenceChecker P(S);
  std::vector<std::vector<Operation>> Logs = {
      {},
      {wr(0, 1, 1)},
      {wr(0, 1, 1), wr(0, 2, 2)},
      {wr(0, 2, 1)},
      {wr(0, 0, 1), rd(0, 0, 2)},
      {wr(0, 2, 1), wr(0, 2, 2)},
  };
  for (const auto &A : Logs)
    for (const auto &B : Logs)
      for (const auto &C : Logs) {
        if (P.checkLogs(A, B) != Tri::Yes || P.checkLogs(B, C) != Tri::Yes)
          continue;
        EXPECT_EQ(P.checkLogs(A, C), Tri::Yes);
      }
}

TEST(Precongruence, Lemma53AppendClosure) {
  // a =< b implies a.c =< b.c, for operation suffixes c.
  RegisterSpec S("mem", 1, 3);
  PrecongruenceChecker P(S);
  std::vector<Operation> A = {wr(0, 1, 1), wr(0, 2, 2)};
  std::vector<Operation> B = {wr(0, 2, 1)};
  ASSERT_EQ(P.checkLogs(A, B), Tri::Yes);
  for (const Operation &Suffix :
       {wr(0, 0, 9), rd(0, 2, 9), wr(0, 1, 9)}) {
    auto A2 = A;
    auto B2 = B;
    A2.push_back(Suffix);
    B2.push_back(Suffix);
    EXPECT_EQ(P.checkLogs(A2, B2), Tri::Yes) << Suffix.toString();
  }
}

TEST(Precongruence, Lemma51MoverAllows) {
  // l2 <| op and allowed l1.l2.op implies allowed l1.op.
  SetSpec S("set", 2);
  PrecongruenceChecker P(S);
  MoverChecker Movers(S);
  Operation L2 = mkOp(1, "set", "add", {0}, 1);
  Operation Op = mkOp(2, "set", "add", {1}, 1);
  ASSERT_EQ(Movers.leftMover(L2, Op), Tri::Yes);
  ASSERT_TRUE(S.allowed({L2, Op}));
  EXPECT_TRUE(S.allowed({Op}));
}

TEST(Precongruence, UnobservableDifferencesPermitted) {
  // "unobservable state differences are also permitted" (Def. 3.1
  // discussion): flipping the hidden bit is equivalent to doing nothing,
  // even though the states differ — only coinduction up to all suffixes
  // sees this.
  HiddenBitSpec S;
  PrecongruenceChecker P(S);
  Operation Flip = mkOp(1, "h", "flip");
  EXPECT_EQ(P.checkLogs({Flip}, {}), Tri::Yes);
  EXPECT_EQ(P.checkLogs({}, {Flip}), Tri::Yes);
  EXPECT_EQ(P.checkLogs({Flip, mkOp(2, "h", "flip")}, {Flip}), Tri::Yes);
}

TEST(Precongruence, NondeterminismIsDirectional) {
  CoinSpec S;
  PrecongruenceChecker P(S);
  Operation Toss = mkOp(1, "c", "toss");
  // Everything the deterministic start allows, the tossed state allows.
  EXPECT_EQ(P.checkLogs({}, {Toss}), Tri::Yes);
  // But the tossed state allows peek=1, which the start does not.
  EXPECT_EQ(P.checkLogs({Toss}, {}), Tri::No);
}

TEST(Precongruence, SubsetShortcutAnswersDiagonalInstantly) {
  RegisterSpec S("mem", 2, 3);
  PrecongruenceLimits Limits;
  Limits.MaxPairs = 1; // Only the root may be expanded...
  PrecongruenceChecker P(S, Limits);
  // ...but equal (subset) denotations need no expansion at all.
  EXPECT_EQ(P.checkLogs({}, {}), Tri::Yes);
  EXPECT_EQ(P.pairsVisited(), 0u);
}

TEST(Precongruence, BudgetExhaustionIsUnknown) {
  // The hidden-bit logs denote *different* singleton states (no subset
  // shortcut) and are equivalent only up to infinite suffixes, so the
  // check has to explore — and a 1-pair budget is not enough.
  HiddenBitSpec S;
  PrecongruenceLimits Limits;
  Limits.MaxPairs = 1;
  PrecongruenceChecker P(S, Limits);
  EXPECT_EQ(P.checkLogs({mkOp(1, "h", "flip")}, {}), Tri::Unknown);
}

TEST(Precongruence, CachesAcrossQueries) {
  HiddenBitSpec S;
  PrecongruenceChecker P(S);
  Operation Flip = mkOp(1, "h", "flip");
  ASSERT_EQ(P.checkLogs({Flip}, {}), Tri::Yes);
  uint64_t After1 = P.pairsVisited();
  EXPECT_GT(After1, 0u);
  ASSERT_EQ(P.checkLogs({Flip}, {}), Tri::Yes);
  EXPECT_EQ(P.pairsVisited(), After1) << "second query should hit the cache";
  EXPECT_GT(P.knownGoodCount(), 0u);
}

TEST(Precongruence, NoWitnessIsCached) {
  RegisterSpec S("mem", 1, 2);
  PrecongruenceChecker P(S);
  ASSERT_EQ(P.checkLogs({wr(0, 1)}, {}), Tri::No);
  EXPECT_GT(P.knownBadCount(), 0u);
  EXPECT_EQ(P.checkLogs({wr(0, 1)}, {}), Tri::No);
}
