//===- tests/reduction_test.cpp - POR equivalence battery ---------------------===//
//
// A reduction bug would silently *hide* non-serializable runs, so the
// partial-order reduction layer is held to an observation-equivalence
// standard: on a grid of small scopes, every reduction mode must report
// the same verdicts as full enumeration, under both the sequential and
// the parallel engine; with a planted criterion bug, every mode must
// still find the counterexample; and the independence relation itself is
// cross-validated by executing claimed-independent firing pairs in both
// orders from fuzzed configurations and comparing the resulting interned
// configuration ids.
//
//===----------------------------------------------------------------------===//

#include "sim/Explorer.h"

#include "analysis/MoverTable.h"
#include "fuzz/Generator.h"
#include "lang/Parser.h"
#include "spec/CounterSpec.h"
#include "spec/MapSpec.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <vector>

using namespace pushpull;

namespace {

constexpr Reduction AllModes[] = {Reduction::None, Reduction::Sleep,
                                  Reduction::Persistent,
                                  Reduction::PersistentSymmetry};

/// One battery scope: a spec factory, per-thread programs, and the
/// explorer toggles that define it.
struct Scope {
  const char *Name;
  std::function<std::unique_ptr<SequentialSpec>()> MakeSpec;
  std::vector<std::string> Programs;
  bool Backward = false;
  bool Invariants = false;
  /// Threads with textually identical programs, so symmetry must merge.
  bool Symmetric = false;
};

ExplorerReport runScope(const Scope &S, Reduction Mode, unsigned Threads) {
  auto Spec = S.MakeSpec();
  MoverChecker Movers(*Spec);
  ExplorerConfig EC;
  EC.Reduce = Mode;
  EC.Threads = Threads;
  EC.ExploreBackwardRules = S.Backward;
  EC.CheckInvariants = S.Invariants;
  EC.MaxConfigs = 2000000;
  // Backward scopes have an *unbounded* configuration space under full
  // enumeration: UNPUSH can retract an entry another thread already
  // pulled, and an UNAPP/APP round recreates the operation under a fresh
  // id, so the puller's local log accumulates dangling pulled entries
  // without limit.  They therefore run depth-truncated — and on truncated
  // searches only the verdicts are comparable (which configurations fall
  // inside the bound depends on traversal order; see Explorer.h).
  EC.MaxDepth = S.Backward ? 40 : 64;
  Explorer E(*Spec, Movers, EC);
  std::vector<std::vector<CodePtr>> Ps;
  for (const std::string &P : S.Programs)
    Ps.push_back({parseOrDie(P)});
  return E.explore(Ps);
}

std::vector<Scope> batteryScopes() {
  auto Reg = [] { return std::make_unique<RegisterSpec>("mem", 1, 2); };
  auto Cnt = [] { return std::make_unique<CounterSpec>("c", 1, 3); };
  auto Set = [] { return std::make_unique<SetSpec>("set", 2); };
  return {
      {"counter 2x2 symmetric", Cnt,
       {"tx { c.inc(0); c.inc(0) }", "tx { c.inc(0); c.inc(0) }"},
       /*Backward=*/false, /*Invariants=*/false, /*Symmetric=*/true},
      {"counter 3 threads symmetric", Cnt,
       {"tx { c.inc(0) }", "tx { c.inc(0) }", "tx { c.inc(0) }"},
       /*Backward=*/false, /*Invariants=*/false, /*Symmetric=*/true},
      {"set distinct + invariants", Set,
       {"tx { a := set.add(0) }", "tx { b := set.add(0); c := set.remove(1) }"},
       /*Backward=*/false, /*Invariants=*/true, /*Symmetric=*/false},
      {"register r/w vs w", Reg,
       {"tx { v := mem.read(0); mem.write(0, 1) }", "tx { mem.write(0, 0) }"},
       /*Backward=*/false, /*Invariants=*/false, /*Symmetric=*/false},
      {"register backward", Reg,
       {"tx { mem.write(0, 1) }", "tx { v := mem.read(0) }"},
       /*Backward=*/true, /*Invariants=*/false, /*Symmetric=*/false},
      {"counter backward symmetric", Cnt,
       {"tx { c.inc(0) }", "tx { c.inc(0) }"},
       /*Backward=*/true, /*Invariants=*/false, /*Symmetric=*/true},
  };
}

} // namespace

// ---------------------------------------------------------------------------
// The equivalence battery: every mode x thread count against Reduction=None.
// ---------------------------------------------------------------------------

TEST(ReductionEquivalence, BatteryMatchesFullEnumeration) {
  for (const Scope &S : batteryScopes()) {
    ExplorerReport Base = runScope(S, Reduction::None, 1);
    if (!S.Backward) {
      ASSERT_FALSE(Base.Truncated) << S.Name;
    }
    ASSERT_GT(Base.TerminalConfigs, 0u) << S.Name;
    ASSERT_TRUE(Base.clean()) << S.Name << ": " << Base.FirstFailure;

    for (Reduction Mode : AllModes) {
      for (unsigned Threads : {1u, 4u}) {
        ExplorerReport R = runScope(S, Mode, Threads);
        std::string Tag = std::string(S.Name) + " / " + toString(Mode) +
                          " / threads=" + std::to_string(Threads);
        if (!S.Backward) {
          ASSERT_FALSE(R.Truncated) << Tag;
        }

        // Verdicts are preserved by every mode (on these clean scopes:
        // all zero).
        EXPECT_EQ(R.NonSerializable, Base.NonSerializable) << Tag;
        EXPECT_EQ(R.InvariantViolations, Base.InvariantViolations) << Tag;
        EXPECT_TRUE(R.clean()) << Tag << ": " << R.FirstFailure;

        // Totals are only comparable between non-truncated searches
        // (truncation cuts at a traversal-order-dependent frontier).
        if (Base.Truncated || R.Truncated)
          continue;

        if (Mode == Reduction::None) {
          EXPECT_EQ(R.ConfigsVisited, Base.ConfigsVisited) << Tag;
          EXPECT_EQ(R.TerminalConfigs, Base.TerminalConfigs) << Tag;
          EXPECT_EQ(R.FiringsPruned, 0u) << Tag;
        } else if (Mode == Reduction::Sleep) {
          // Sleep sets prune transitions, never states: identical closure.
          EXPECT_EQ(R.ConfigsVisited, Base.ConfigsVisited) << Tag;
          EXPECT_EQ(R.TerminalConfigs, Base.TerminalConfigs) << Tag;
        } else if (Mode == Reduction::Persistent) {
          // Persistent sets may skip intermediate configurations but
          // reach every quiescent terminal.
          EXPECT_LE(R.ConfigsVisited, Base.ConfigsVisited) << Tag;
          EXPECT_EQ(R.TerminalConfigs, Base.TerminalConfigs) << Tag;
        } else {
          // Symmetry also merges terminals (quotient under renaming).
          EXPECT_LE(R.ConfigsVisited, Base.ConfigsVisited) << Tag;
          EXPECT_LE(R.TerminalConfigs, Base.TerminalConfigs) << Tag;
          if (S.Symmetric) {
            EXPECT_GT(R.SymmetryHits, 0u) << Tag;
            EXPECT_LT(R.TerminalConfigs, Base.TerminalConfigs) << Tag;
          } else {
            // No identical programs: the group is trivial and the mode
            // degenerates to Persistent exactly.
            ExplorerReport P = runScope(S, Reduction::Persistent, 1);
            EXPECT_EQ(R.ConfigsVisited, P.ConfigsVisited) << Tag;
            EXPECT_EQ(R.TerminalConfigs, P.TerminalConfigs) << Tag;
            EXPECT_EQ(R.SymmetryHits, 0u) << Tag;
          }
        }
      }

      // The deterministic aggregates agree between the sequential and the
      // parallel engine, mode by mode (non-truncated searches only).
      ExplorerReport Seq = runScope(S, Mode, 1);
      ExplorerReport Par = runScope(S, Mode, 4);
      std::string Tag = std::string(S.Name) + " / " + toString(Mode);
      EXPECT_EQ(Par.NonSerializable, Seq.NonSerializable) << Tag;
      EXPECT_EQ(Par.InvariantViolations, Seq.InvariantViolations) << Tag;
      if (!Seq.Truncated && !Par.Truncated) {
        EXPECT_EQ(Par.ConfigsVisited, Seq.ConfigsVisited) << Tag;
        EXPECT_EQ(Par.TerminalConfigs, Seq.TerminalConfigs) << Tag;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// The reduction's headline capability: full enumeration of the backward
// rules diverges (UNPUSH + UNAPP/APP recreate pulled operations under
// fresh ids, so local logs grow without bound), but the divergent branch
// is a commuted-pair cycle — and sleep sets prune it.  The same scope
// that only ever truncates under Reduction::None *completes* under Sleep
// and Persistent, with deterministic totals across engines.
// ---------------------------------------------------------------------------

TEST(ReductionEquivalence, SleepSetsCloseDivergentBackwardSpace) {
  Scope S{"register backward",
          [] { return std::make_unique<RegisterSpec>("mem", 1, 2); },
          {"tx { mem.write(0, 1) }", "tx { v := mem.read(0) }"},
          /*Backward=*/true,
          /*Invariants=*/false,
          /*Symmetric=*/false};

  // Full enumeration hits the depth bound — and the visited count keeps
  // growing as the bound is raised, the signature of divergence.
  ExplorerReport None = runScope(S, Reduction::None, 1);
  EXPECT_TRUE(None.Truncated);

  for (Reduction Mode :
       {Reduction::Sleep, Reduction::Persistent,
        Reduction::PersistentSymmetry}) {
    ExplorerReport Seq = runScope(S, Mode, 1);
    ExplorerReport Par = runScope(S, Mode, 4);
    std::string Tag = toString(Mode);
    ASSERT_FALSE(Seq.Truncated)
        << Tag << ": the reduced backward search must close";
    ASSERT_FALSE(Par.Truncated) << Tag;
    EXPECT_TRUE(Seq.clean()) << Tag << ": " << Seq.FirstFailure;
    // Both quiescent terminals (t0-then-t1 and t1-then-t0 commit orders)
    // survive the reduction, on both engines.
    EXPECT_EQ(Seq.TerminalConfigs, 2u) << Tag;
    EXPECT_EQ(Par.TerminalConfigs, 2u) << Tag;
    EXPECT_EQ(Par.ConfigsVisited, Seq.ConfigsVisited) << Tag;
    EXPECT_LT(Seq.ConfigsVisited, None.ConfigsVisited)
        << Tag << ": closing the space must also shrink it";
  }
}

// ---------------------------------------------------------------------------
// The reduction target: on a 3-identical-thread scope the symmetry
// quotient (|S3| = 6) dominates, and Persistent+Symmetry must visit at
// most 40% of the full enumeration's configurations while agreeing on
// the verdicts.  (Measured: ~16%.)
// ---------------------------------------------------------------------------

TEST(ReductionEquivalence, SymmetryMeetsReductionTarget) {
  Scope S{"counter 3 threads symmetric",
          [] { return std::make_unique<CounterSpec>("c", 1, 3); },
          {"tx { c.inc(0) }", "tx { c.inc(0) }", "tx { c.inc(0) }"},
          /*Backward=*/false,
          /*Invariants=*/false,
          /*Symmetric=*/true};
  ExplorerReport None = runScope(S, Reduction::None, 1);
  ExplorerReport PS = runScope(S, Reduction::PersistentSymmetry, 1);
  ASSERT_FALSE(None.Truncated);
  ASSERT_FALSE(PS.Truncated);
  EXPECT_TRUE(None.clean()) << None.FirstFailure;
  EXPECT_TRUE(PS.clean()) << PS.FirstFailure;
  EXPECT_EQ(PS.NonSerializable, None.NonSerializable);
  EXPECT_EQ(PS.InvariantViolations, None.InvariantViolations);
  // <= 40% of the full enumeration (integer form: 5 * reduced <= 2 * full).
  EXPECT_LE(PS.ConfigsVisited * 5, None.ConfigsVisited * 2)
      << "persistent+symmetry visited " << PS.ConfigsVisited << " of "
      << None.ConfigsVisited;
  // The full S3 orbit of terminals collapses to its representative.
  EXPECT_EQ(None.TerminalConfigs, 6u);
  EXPECT_EQ(PS.TerminalConfigs, 1u);
}

// ---------------------------------------------------------------------------
// The audit/trace bookkeeping the explorer elides (MachineConfig::
// RecordAudit, off by default during exploration) must be *pure*
// observation: switching it on cannot change a single explorer total or
// verdict on any scope x mode.
// ---------------------------------------------------------------------------

TEST(ReductionEquivalence, ExplorerResultsIdenticalWithAndWithoutAudit) {
  for (const Scope &S : batteryScopes()) {
    for (Reduction Mode : AllModes) {
      ExplorerReport ByConfig[2];
      for (bool Audit : {false, true}) {
        auto Spec = S.MakeSpec();
        MoverChecker Movers(*Spec);
        ExplorerConfig EC;
        EC.Reduce = Mode;
        EC.ExploreBackwardRules = S.Backward;
        EC.CheckInvariants = S.Invariants;
        EC.MaxDepth = S.Backward ? 40 : 64;
        EC.Machine.RecordAudit = Audit;
        Explorer E(*Spec, Movers, EC);
        std::vector<std::vector<CodePtr>> Ps;
        for (const std::string &P : S.Programs)
          Ps.push_back({parseOrDie(P)});
        ByConfig[Audit] = E.explore(Ps);
      }
      const ExplorerReport &Off = ByConfig[0], &On = ByConfig[1];
      std::string Tag = std::string(S.Name) + " / " + toString(Mode);
      EXPECT_EQ(On.ConfigsVisited, Off.ConfigsVisited) << Tag;
      EXPECT_EQ(On.TerminalConfigs, Off.TerminalConfigs) << Tag;
      EXPECT_EQ(On.RuleApplications, Off.RuleApplications) << Tag;
      EXPECT_EQ(On.RejectedAttempts, Off.RejectedAttempts) << Tag;
      EXPECT_EQ(On.NonSerializable, Off.NonSerializable) << Tag;
      EXPECT_EQ(On.InvariantViolations, Off.InvariantViolations) << Tag;
      EXPECT_EQ(On.FiringsPruned, Off.FiringsPruned) << Tag;
      EXPECT_EQ(On.Truncated, Off.Truncated) << Tag;
    }
  }
}

// ---------------------------------------------------------------------------
// Adversarial soundness: with a planted PUSH-criterion bug the explorer
// reports non-serializable terminals — and no reduction mode may prune
// the counterexample away.
// ---------------------------------------------------------------------------

namespace {

/// The shrinker test's pessimistic commit-phase clinic, as raw explorer
/// programs: thread 0 holds pushed reads of register 0/1 while thread 1
/// writes register 2 then register 0 — with PUSH criterion (ii) disabled
/// the second push is wrongly admitted ahead of the reads it invalidates.
Scope injectedBugScope() {
  return {"push(ii) clinic",
          [] { return std::make_unique<RegisterSpec>("mem", 3, 2); },
          {"tx { a := mem.read(0); b := mem.read(1); c := mem.read(1) }",
           "tx { mem.write(2, 1); mem.write(0, 1) }"},
          /*Backward=*/false,
          /*Invariants=*/false,
          /*Symmetric=*/false};
}

ExplorerReport runInjected(const Scope &S, Reduction Mode, unsigned Threads,
                           const std::string &DisabledCriterion) {
  auto Spec = S.MakeSpec();
  MoverChecker Movers(*Spec);
  ExplorerConfig EC;
  EC.Reduce = Mode;
  EC.Threads = Threads;
  EC.MaxConfigs = 2000000;
  EC.Machine.DisabledCriterion = DisabledCriterion;
  Explorer E(*Spec, Movers, EC);
  std::vector<std::vector<CodePtr>> Ps;
  for (const std::string &P : S.Programs)
    Ps.push_back({parseOrDie(P)});
  return E.explore(Ps);
}

} // namespace

TEST(ReductionSoundness, InjectedPushCriterionBugFoundUnderEveryMode) {
  Scope S = injectedBugScope();

  // Sanity: the scope is clean without the injection.
  ExplorerReport Clean = runInjected(S, Reduction::None, 1, "");
  ASSERT_FALSE(Clean.Truncated);
  ASSERT_TRUE(Clean.clean()) << Clean.FirstFailure;

  ExplorerReport Base = runInjected(S, Reduction::None, 1,
                                    "PUSH criterion (ii)");
  ASSERT_FALSE(Base.Truncated);
  ASSERT_GT(Base.NonSerializable, 0u)
      << "the planted bug must produce a non-serializable terminal";

  for (Reduction Mode : AllModes) {
    for (unsigned Threads : {1u, 4u}) {
      ExplorerReport R =
          runInjected(S, Mode, Threads, "PUSH criterion (ii)");
      std::string Tag =
          std::string(toString(Mode)) + " / threads=" + std::to_string(Threads);
      ASSERT_FALSE(R.Truncated) << Tag;
      // Reduction must never prune the counterexample...
      EXPECT_GT(R.NonSerializable, 0u) << Tag;
      // ...and must report it reproducibly.
      EXPECT_FALSE(R.FirstFailure.empty()) << Tag;
      // Sleep and persistent reach the exact same terminal classes, so
      // the failure *count* is preserved too; symmetry quotients it but
      // this scope's programs are distinct, so it degenerates likewise.
      EXPECT_EQ(R.NonSerializable, Base.NonSerializable) << Tag;
    }
  }
}

// ---------------------------------------------------------------------------
// Independence relation: table-driven classification checks.
// ---------------------------------------------------------------------------

namespace {

Candidate cand(TxId Tid, FiringKind K, uint32_t A = 0, uint32_t B = 0) {
  Candidate C;
  C.F = {Tid, K, A, B};
  switch (K) {
  case FiringKind::Begin:
  case FiringKind::App:
  case FiringKind::UnApp:
  case FiringKind::UnPull:
    break;
  case FiringKind::Push:
    C.FP = {true, true, 0, false};
    break;
  case FiringKind::UnPush:
    C.FP = {true, true, 0, false};
    break;
  case FiringKind::Pull:
    C.FP = {true, false, 0, false};
    break;
  case FiringKind::Commit:
    C.FP = {true, true, 0, false};
    break;
  }
  return C;
}

Candidate pullOf(TxId Tid, uint32_t GlobalIdx, TxId Owner, bool Committed) {
  Candidate C = cand(Tid, FiringKind::Pull, GlobalIdx);
  C.FP.PullOwner = Owner;
  C.FP.PullCommitted = Committed;
  return C;
}

} // namespace

TEST(Independence, TableDrivenClassification) {
  struct Row {
    Candidate A, B;
    bool Independent;
    const char *Why;
  };
  const Row Rows[] = {
      // Same thread: always dependent, even for two local firings.
      {cand(0, FiringKind::App, 0, 0), cand(0, FiringKind::Push, 0),
       false, "same thread"},
      {cand(1, FiringKind::UnApp), cand(1, FiringKind::UnPull, 0),
       false, "same thread backward"},
      // Local firings are independent of everything cross-thread.
      {cand(0, FiringKind::App, 1, 0), cand(1, FiringKind::Push, 0),
       true, "APP is local"},
      {cand(0, FiringKind::Begin), cand(1, FiringKind::Commit),
       true, "BEGIN is local"},
      {cand(0, FiringKind::UnApp), cand(1, FiringKind::UnPush, 0),
       true, "UNAPP is local"},
      {cand(0, FiringKind::UnPull, 2), cand(1, FiringKind::Commit),
       true, "UNPULL is local"},
      {cand(0, FiringKind::App, 0, 1), cand(1, FiringKind::App, 0, 0),
       true, "two local firings"},
      // PULL refinements.
      {pullOf(0, 1, 2, false), pullOf(1, 1, 2, false),
       true, "PULL x PULL read-only on G"},
      {pullOf(0, 0, 1, false), cand(1, FiringKind::Push, 0),
       true, "PULL x PUSH: append moves nothing"},
      {pullOf(0, 0, 1, true), cand(1, FiringKind::Commit),
       true, "PULL of committed entry x CMT"},
      {pullOf(0, 0, 2, false), cand(1, FiringKind::Commit),
       true, "PULL of third party's entry x CMT"},
      {pullOf(0, 0, 1, false), cand(1, FiringKind::Commit),
       false, "PULL of committer's uncommitted entry x CMT"},
      {pullOf(0, 0, 1, false), cand(1, FiringKind::UnPush, 0),
       false, "PULL x UNPUSH: removal shifts indices"},
      // Order-sensitive G writers.
      {cand(0, FiringKind::Push, 0), cand(1, FiringKind::Push, 0),
       false, "PUSH x PUSH: G order observable"},
      {cand(0, FiringKind::Commit), cand(1, FiringKind::Commit),
       false, "CMT x CMT: commit order feeds the oracle"},
      {cand(0, FiringKind::Push, 0), cand(1, FiringKind::Commit),
       false, "PUSH x CMT"},
      {cand(0, FiringKind::UnPush, 0), cand(1, FiringKind::UnPush, 1),
       false, "UNPUSH x UNPUSH"},
  };
  for (const Row &R : Rows) {
    EXPECT_EQ(independentFirings(R.A, R.B), R.Independent) << R.Why;
    // The relation is symmetric.
    EXPECT_EQ(independentFirings(R.B, R.A), R.Independent) << R.Why;
  }
}

// ---------------------------------------------------------------------------
// Independence relation: claimed-independent pairs must actually commute.
// Fuzzed over configurations drawn from the differential fuzzer's case
// generator: random walks through machine configurations; at each stop,
// every co-enabled claimed-independent pair is executed in both orders
// and the resulting configurations compared by interned StateId.
// ---------------------------------------------------------------------------

namespace {

/// Candidate enumeration mirroring the explorer's (all pulls included):
/// independent re-implementation on the public machine API, so this test
/// exercises the relation rather than the explorer's own enumerator.
std::vector<Candidate> enumerateAll(const PushPullMachine &M, bool Backward) {
  std::vector<Candidate> Out;
  for (const ThreadState &Th : M.threads()) {
    TxId T = Th.Tid;
    if (!Th.InTx) {
      if (!Th.Pending.empty())
        Out.push_back(cand(T, FiringKind::Begin));
      continue;
    }
    for (const AppChoice &Choice : M.appChoices(T))
      for (size_t CI = 0; CI < Choice.Completions.size(); ++CI)
        Out.push_back(cand(T, FiringKind::App,
                           static_cast<uint32_t>(Choice.StepIdx),
                           static_cast<uint32_t>(CI)));
    for (size_t I : Th.L.indicesOf(LocalKind::NotPushed))
      Out.push_back(cand(T, FiringKind::Push, static_cast<uint32_t>(I)));
    for (size_t GI = 0; GI < M.global().size(); ++GI) {
      const GlobalEntry &GE = M.global()[GI];
      if (Th.L.contains(GE.Op.Id))
        continue;
      Out.push_back(pullOf(T, static_cast<uint32_t>(GI), GE.Owner,
                           GE.Kind == GlobalKind::Committed));
    }
    Out.push_back(cand(T, FiringKind::Commit));
    if (Backward) {
      Out.push_back(cand(T, FiringKind::UnApp));
      for (size_t I : Th.L.indicesOf(LocalKind::Pushed))
        Out.push_back(cand(T, FiringKind::UnPush, static_cast<uint32_t>(I)));
      for (size_t I : Th.L.indicesOf(LocalKind::Pulled))
        Out.push_back(cand(T, FiringKind::UnPull, static_cast<uint32_t>(I)));
    }
  }
  return Out;
}

/// Check the diamond for every co-enabled claimed-independent pair at M:
/// both orders must be applicable and land on the same configuration.
/// Returns the number of pairs exercised.
size_t checkDiamonds(const PushPullMachine &M, StateTable &Table,
                     bool Backward, size_t MaxPairs) {
  std::vector<Candidate> Cands = enumerateAll(M, Backward);
  size_t Checked = 0;
  for (size_t I = 0; I < Cands.size() && Checked < MaxPairs; ++I) {
    for (size_t J = I + 1; J < Cands.size() && Checked < MaxPairs; ++J) {
      if (!independentFirings(Cands[I], Cands[J]))
        continue;
      PushPullMachine AB = M;
      if (!applyFiring(AB, Cands[I].F))
        continue; // Not enabled here; nothing is claimed.
      PushPullMachine BA = M;
      if (!applyFiring(BA, Cands[J].F))
        continue;
      ++Checked;
      // Both enabled at M: independence claims each stays enabled after
      // the other and that the two orders commute.
      EXPECT_TRUE(applyFiring(AB, Cands[J].F))
          << Cands[J].F.toString() << " disabled by "
          << Cands[I].F.toString() << " at\n"
          << M.toString();
      EXPECT_TRUE(applyFiring(BA, Cands[I].F))
          << Cands[I].F.toString() << " disabled by "
          << Cands[J].F.toString() << " at\n"
          << M.toString();
      StateId KAB = Table.internState(AB.configKey());
      StateId KBA = Table.internState(BA.configKey());
      EXPECT_EQ(KAB, KBA)
          << Cands[I].F.toString() << " and " << Cands[J].F.toString()
          << " claimed independent but do not commute at\n"
          << M.toString();
    }
  }
  return Checked;
}

} // namespace

TEST(Independence, FuzzedPairsCommute) {
  GeneratorConfig GC;
  GC.Seed = 20260806;
  GC.MaxThreads = 3;
  GC.MaxTxPerThread = 1;
  GC.MaxOpsPerTx = 2;
  GC.SpecKinds = {"register", "counter", "set"};
  Generator Gen(GC);

  std::mt19937_64 Rng(7);
  size_t TotalPairs = 0;
  for (int CaseIdx = 0; CaseIdx < 18; ++CaseIdx) {
    FuzzCase C = Gen.next();
    std::string Error;
    std::shared_ptr<const SequentialSpec> Spec = C.buildSpec(Error);
    ASSERT_TRUE(Spec) << Error;
    MoverChecker Movers(*Spec);
    StateTable &Table = Spec->table();
    const bool Backward = CaseIdx % 3 == 0;

    PushPullMachine M(*Spec, Movers);
    for (const auto &P : C.Threads)
      M.addThread(P);

    // A short random walk; the diamond check runs at every stop.
    for (int Step = 0; Step < 10; ++Step) {
      TotalPairs += checkDiamonds(M, Table, Backward, /*MaxPairs=*/40);
      std::vector<Candidate> Cands = enumerateAll(M, Backward);
      if (Cands.empty())
        break;
      // Advance by a random applicable candidate.
      std::shuffle(Cands.begin(), Cands.end(), Rng);
      bool Advanced = false;
      for (const Candidate &Next : Cands) {
        PushPullMachine N = M;
        if (applyFiring(N, Next.F)) {
          M = std::move(N);
          Advanced = true;
          break;
        }
      }
      if (!Advanced)
        break;
    }
  }
  // The walk must actually have exercised the relation.
  EXPECT_GT(TotalPairs, 200u);
}

// ---------------------------------------------------------------------------
// Symmetry-group construction.
// ---------------------------------------------------------------------------

TEST(Independence, SymmetryGroupShape) {
  CodePtr A = parseOrDie("tx { c.inc(0) }");
  CodePtr B = parseOrDie("tx { c.inc(1) }");

  // Three identical programs: the full S3 (identity first).
  auto G3 = symmetryGroup({{A}, {A}, {A}});
  EXPECT_EQ(G3.size(), 6u);
  EXPECT_EQ(G3.front(), (std::vector<TxId>{0, 1, 2}));

  // Two classes {0, 2} and {1}: only the swap of the identical pair.
  auto G2 = symmetryGroup({{A}, {B}, {A}});
  EXPECT_EQ(G2.size(), 2u);
  EXPECT_EQ(G2.front(), (std::vector<TxId>{0, 1, 2}));
  EXPECT_EQ(G2.back(), (std::vector<TxId>{2, 1, 0}));

  // All distinct: trivial group.
  CodePtr C = parseOrDie("tx { c.inc(0); c.inc(1) }");
  auto G1 = symmetryGroup({{A}, {B}, {C}});
  EXPECT_EQ(G1.size(), 1u);

  // Truncation cap respected and identity kept.
  auto GCap = symmetryGroup({{A}, {A}, {A}, {A}, {A}}, /*MaxPerms=*/10);
  EXPECT_EQ(GCap.size(), 10u);
  EXPECT_EQ(GCap.front(), (std::vector<TxId>{0, 1, 2, 3, 4}));
}

// ---------------------------------------------------------------------------
// The certified commutativity table (ExplorerConfig::CommutDB): enabling
// the PUSH x PUSH refinement plus the G-order quotient must preserve
// every verdict on every mode x thread count, and the DB run's terminal
// set must be exactly the quotient image of the baseline's terminals.
// ---------------------------------------------------------------------------

namespace {

/// One DB-battery run: explorer report plus the terminal configurations,
/// each rendered through the quotient key (so baseline terminals are
/// comparable with DB-run terminals: the quotient maps both onto the
/// same canonical space).
struct DBRun {
  ExplorerReport R;
  std::vector<std::string> Terminals;
};

DBRun runScopeQuotient(const Scope &S, Reduction Mode, unsigned Threads,
                       bool UseDB, const std::string &Inject = "") {
  auto Spec = S.MakeSpec();
  MoverChecker Movers(*Spec);
  CommutativityDB DB(*Spec);
  ExplorerConfig EC;
  EC.Reduce = Mode;
  EC.Threads = Threads;
  EC.CheckInvariants = S.Invariants;
  EC.MaxConfigs = 2000000;
  EC.MaxDepth = 64;
  EC.Machine.DisabledCriterion = Inject;
  if (UseDB)
    EC.CommutDB = &DB;
  DBRun Out;
  std::mutex Mu;
  EC.OnTerminal = [&](const PushPullMachine &M) {
    std::string Key = M.configKey(nullptr, &DB, nullptr);
    std::lock_guard<std::mutex> Lock(Mu);
    Out.Terminals.push_back(std::move(Key));
  };
  std::vector<std::vector<CodePtr>> Ps;
  for (const std::string &P : S.Programs)
    Ps.push_back({parseOrDie(P)});
  Explorer E(*Spec, Movers, EC);
  Out.R = E.explore(Ps);
  std::sort(Out.Terminals.begin(), Out.Terminals.end());
  Out.Terminals.erase(
      std::unique(Out.Terminals.begin(), Out.Terminals.end()),
      Out.Terminals.end());
  return Out;
}

std::vector<Scope> commutScopes() {
  auto Cnt = [] { return std::make_unique<CounterSpec>("c", 2, 3); };
  auto Map = [] { return std::make_unique<MapSpec>("map", 2, 2); };
  auto Reg = [] { return std::make_unique<RegisterSpec>("mem", 1, 2); };
  return {
      // Distinct counters: every cross-thread PUSH pair strongly
      // commutes, the quotient merges aggressively.
      {"counter distinct", Cnt,
       {"tx { c.inc(0) }", "tx { c.inc(1) }"},
       /*Backward=*/false, /*Invariants=*/false, /*Symmetric=*/false},
      // Identical programs: composition with the symmetry quotient.
      {"counter symmetric", Cnt,
       {"tx { c.inc(0) }", "tx { c.inc(0) }"},
       /*Backward=*/false, /*Invariants=*/false, /*Symmetric=*/true},
      // The headline scope: puts to distinct keys.
      {"map distinct keys", Map,
       {"tx { a := map.put(0, 1) }", "tx { b := map.put(1, 1) }"},
       /*Backward=*/false, /*Invariants=*/false, /*Symmetric=*/false},
      // Adversarial: same-register writers never commute, the DB must
      // degenerate to the identity quotient.
      {"register conflicting writes", Reg,
       {"tx { mem.write(0, 1) }", "tx { mem.write(0, 0) }"},
       /*Backward=*/false, /*Invariants=*/false, /*Symmetric=*/false},
  };
}

} // namespace

TEST(CommutativityReduction, DBPreservesVerdictsAndTerminalQuotient) {
  for (const Scope &S : commutScopes()) {
    for (Reduction Mode : AllModes) {
      for (unsigned Threads : {1u, 4u}) {
        DBRun Base = runScopeQuotient(S, Mode, Threads, /*UseDB=*/false);
        DBRun WithDB = runScopeQuotient(S, Mode, Threads, /*UseDB=*/true);
        std::string Tag = std::string(S.Name) + " / " + toString(Mode) +
                          " / threads=" + std::to_string(Threads);
        ASSERT_FALSE(Base.R.Truncated) << Tag;
        ASSERT_FALSE(WithDB.R.Truncated) << Tag;
        EXPECT_TRUE(Base.R.clean()) << Tag << ": " << Base.R.FirstFailure;
        EXPECT_TRUE(WithDB.R.clean()) << Tag << ": "
                                      << WithDB.R.FirstFailure;
        EXPECT_EQ(WithDB.R.NonSerializable, Base.R.NonSerializable) << Tag;
        EXPECT_EQ(WithDB.R.InvariantViolations,
                  Base.R.InvariantViolations)
            << Tag;
        // The quotient merges configurations, never invents them.
        EXPECT_LE(WithDB.R.ConfigsVisited, Base.R.ConfigsVisited) << Tag;
        // Terminal sets agree once both are rendered through the
        // quotient key.  (Symmetry canonicalization happens before the
        // OnTerminal hook only for the visited-map, not for the machine
        // itself, so the hook sees representative machines; outside
        // symmetry mode the comparison is exact.)
        if (Mode != Reduction::PersistentSymmetry)
          EXPECT_EQ(WithDB.Terminals, Base.Terminals) << Tag;
      }
    }
  }
}

TEST(CommutativityReduction, DBShrinksDistinctKeyMapScope) {
  Scope S{"map distinct keys",
          [] { return std::make_unique<MapSpec>("map", 2, 2); },
          {"tx { a := map.put(0, 1); b := map.put(0, 0) }",
           "tx { c := map.put(1, 1); d := map.put(1, 0) }"},
          /*Backward=*/false,
          /*Invariants=*/false,
          /*Symmetric=*/false};
  for (Reduction Mode : {Reduction::Sleep, Reduction::PersistentSymmetry}) {
    DBRun Base = runScopeQuotient(S, Mode, 1, /*UseDB=*/false);
    DBRun WithDB = runScopeQuotient(S, Mode, 1, /*UseDB=*/true);
    std::string Tag = toString(Mode);
    ASSERT_FALSE(Base.R.Truncated) << Tag;
    ASSERT_FALSE(WithDB.R.Truncated) << Tag;
    EXPECT_TRUE(WithDB.R.clean()) << Tag << ": " << WithDB.R.FirstFailure;
    EXPECT_EQ(WithDB.Terminals, Base.Terminals) << Tag;
    // The acceptance floor: at least a 1.2x configuration reduction
    // (integer form: 6 * reduced <= 5 * full).
    EXPECT_LE(WithDB.R.ConfigsVisited * 6, Base.R.ConfigsVisited * 5)
        << Tag << ": DB visited " << WithDB.R.ConfigsVisited << " of "
        << Base.R.ConfigsVisited;
  }
}

TEST(CommutativityReduction, InjectedBugStillFoundWithDB) {
  // The planted PUSH criterion (ii) bug from the soundness battery, now
  // with the commutativity DB enabled on top of every mode: the
  // refinement must never prune the counterexample.  The quotient merges
  // genuinely commuting cross-thread pairs (reads, disjoint registers)
  // even on the buggy machine, so the DB runs' non-serializable COUNT is
  // compared against the DB-enabled full enumeration — the same quotient
  // space — while the raw baseline only lower-bounds detection.
  Scope S = injectedBugScope();
  DBRun Raw = runScopeQuotient(S, Reduction::None, 1, /*UseDB=*/false,
                               "PUSH criterion (ii)");
  DBRun Base = runScopeQuotient(S, Reduction::None, 1, /*UseDB=*/true,
                                "PUSH criterion (ii)");
  ASSERT_FALSE(Raw.R.Truncated);
  ASSERT_FALSE(Base.R.Truncated);
  ASSERT_GT(Raw.R.NonSerializable, 0u);
  ASSERT_GT(Base.R.NonSerializable, 0u)
      << "the quotient must not merge the counterexample away";
  // Quotient-rendered terminal sets agree between the raw and DB-enabled
  // full enumerations, buggy machine included.
  EXPECT_EQ(Base.Terminals, Raw.Terminals);
  for (Reduction Mode : AllModes) {
    for (unsigned Threads : {1u, 4u}) {
      DBRun R = runScopeQuotient(S, Mode, Threads, /*UseDB=*/true,
                                 "PUSH criterion (ii)");
      std::string Tag = std::string(toString(Mode)) +
                        " / threads=" + std::to_string(Threads);
      ASSERT_FALSE(R.R.Truncated) << Tag;
      EXPECT_GT(R.R.NonSerializable, 0u) << Tag;
      EXPECT_EQ(R.R.NonSerializable, Base.R.NonSerializable) << Tag;
      EXPECT_FALSE(R.R.FirstFailure.empty()) << Tag;
    }
  }
}
