//===- tests/scheduler_test.cpp - Scheduler determinism and budgets -----------===//
//
// The properties the fuzzer leans on: a (policy, seed) pair fully
// determines the interleaving — for every engine, not just the optimistic
// one — and the step budget cleanly terminates an engine that never makes
// progress, leaving an honest stats report instead of a hang.
//
//===----------------------------------------------------------------------===//

#include "sim/Scheduler.h"

#include "lang/Parser.h"
#include "sim/Scenario.h"
#include "spec/MapSpec.h"

#include <gtest/gtest.h>

using namespace pushpull;

namespace {

/// One deterministic run: the high-contention two-writers-one-reader
/// program under the given engine, policy, and seed.  Returns the full
/// trace rendering plus the stats line — equal strings mean the runs were
/// step-for-step identical.  When \p Picks is given, every pick actually
/// stepped is captured there (for re-running under Replay); when
/// \p ReplayPicks is given, the run replays that recording instead of
/// consulting the policy.
std::string runOnce(const std::string &Engine, SchedulePolicy Policy,
                    uint64_t Seed, std::vector<uint32_t> *Picks = nullptr,
                    const std::vector<uint32_t> *ReplayPicks = nullptr) {
  MapSpec Spec("map", 2, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  M.addThread({parseOrDie("tx { map.put(0, 1); map.put(1, 1) }")});
  M.addThread({parseOrDie("tx { map.put(1, 1); map.put(0, 1) }")});
  M.addThread({parseOrDie("tx { a := map.get(0) }")});
  std::string Error;
  std::map<std::string, std::string> Opts = {{"seed", "1"}};
  std::unique_ptr<TMEngine> E = makeEngine(Engine, Opts, M, Error);
  EXPECT_TRUE(E) << Engine << ": " << Error;
  if (!E)
    return "<build error>";
  SchedulerConfig SC;
  SC.Policy = Policy;
  SC.Seed = Seed;
  SC.MaxSteps = 30000;
  SC.CapturePicks = Picks;
  if (ReplayPicks)
    SC.ReplayPicks = *ReplayPicks;
  RunStats St = Scheduler(SC).run(*E);
  return M.trace().toString() + "\n" + St.toString();
}

/// An engine that can never advance any thread: every step reports
/// Blocked and the machine stays exactly where it started.
class StuckEngine : public TMEngine {
public:
  using TMEngine::TMEngine;
  std::string name() const override { return "stuck"; }
  StepStatus step(TxId) override { return StepStatus::Blocked; }
};

} // namespace

TEST(Scheduler, EqualSeedsReplayIdenticallyForEveryEngine) {
  for (const std::string &Engine : allEngineNames())
    for (SchedulePolicy P :
         {SchedulePolicy::RoundRobin, SchedulePolicy::RandomUniform,
          SchedulePolicy::PriorityChangePoints})
      EXPECT_EQ(runOnce(Engine, P, 2), runOnce(Engine, P, 2))
          << Engine << " policy " << static_cast<int>(P);
}

TEST(Scheduler, CapturedPicksReplayByteIdenticallyForEveryEngine) {
  // The ppstress round-trip, engine by engine: record the picks of a
  // random run, re-run them under SchedulePolicy::Replay twice, and
  // demand byte-identical traces — the recording, not the policy, now
  // pins the run.
  for (const std::string &Engine : allEngineNames()) {
    std::vector<uint32_t> Picks;
    std::string Live =
        runOnce(Engine, SchedulePolicy::RandomUniform, 5, &Picks);
    ASSERT_FALSE(Picks.empty()) << Engine;

    std::vector<uint32_t> Replayed;
    std::string First =
        runOnce(Engine, SchedulePolicy::Replay, 999, &Replayed, &Picks);
    std::string Second =
        runOnce(Engine, SchedulePolicy::Replay, 42, nullptr, &Picks);
    EXPECT_EQ(Live, First) << Engine << ": replay diverged from the live run";
    EXPECT_EQ(First, Second) << Engine << ": replay is seed-sensitive";
    // Replay also captures faithfully: recording a replay returns the
    // original pick sequence.
    EXPECT_EQ(Picks, Replayed) << Engine;
  }
}

TEST(Scheduler, ReplayEndsAtRecordingExhaustionOrBadPick) {
  // A truncated recording stops exactly there; an out-of-range pick ends
  // the run instead of fabricating a step.
  std::vector<uint32_t> Picks;
  runOnce("optimistic", SchedulePolicy::RandomUniform, 5, &Picks);
  ASSERT_GT(Picks.size(), 4u);

  std::vector<uint32_t> Prefix(Picks.begin(), Picks.begin() + 4);
  std::vector<uint32_t> Captured;
  runOnce("optimistic", SchedulePolicy::Replay, 1, &Captured, &Prefix);
  EXPECT_EQ(Captured, Prefix);

  std::vector<uint32_t> Bad = {Prefix[0], 1000};
  Captured.clear();
  runOnce("optimistic", SchedulePolicy::Replay, 1, &Captured, &Bad);
  EXPECT_EQ(Captured.size(), 1u) << "nonexistent thread must end the run";
}

TEST(Scheduler, DifferentSeedsChangeTheRandomInterleaving) {
  // Seeds 2 and 3 produce different traces for the contended program (a
  // pinned empirical fact; any seed pair that collided here would also
  // weaken the fuzzer's schedule exploration).
  EXPECT_NE(runOnce("optimistic", SchedulePolicy::RandomUniform, 2),
            runOnce("optimistic", SchedulePolicy::RandomUniform, 3));
  // Round-robin ignores the seed entirely.
  EXPECT_EQ(runOnce("optimistic", SchedulePolicy::RoundRobin, 2),
            runOnce("optimistic", SchedulePolicy::RoundRobin, 3));
}

TEST(Scheduler, StepBudgetTerminatesALivelockingEngine) {
  MapSpec Spec("map", 2, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  M.addThread({parseOrDie("tx { map.put(0, 1) }")});
  M.addThread({parseOrDie("tx { a := map.get(0) }")});
  StuckEngine E(M);

  SchedulerConfig SC;
  SC.Policy = SchedulePolicy::RandomUniform;
  SC.Seed = 1;
  SC.MaxSteps = 500;
  RunStats St = Scheduler(SC).run(E);

  // The run ends at the budget, not in a hang, and the report is honest:
  // all steps blocked, nothing committed, not quiescent.
  EXPECT_EQ(St.SchedulerSteps, 500u);
  EXPECT_EQ(St.BlockedSteps, 500u);
  EXPECT_EQ(St.Commits, 0u);
  EXPECT_EQ(St.CommittedOps, 0u);
  EXPECT_FALSE(St.Quiescent);
  EXPECT_NE(St.toString().find("steps=500 blocked=500"), std::string::npos)
      << St.toString();
}

TEST(Scheduler, PriorityChangePointsRespectsTheBudgetUnderLivelock) {
  // The PCT policy drops a blocked thread's priority every step; the drop
  // counter must not wrap or wedge over a long all-blocked run.
  MapSpec Spec("map", 2, 2);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  M.addThread({parseOrDie("tx { map.put(0, 1) }")});
  M.addThread({parseOrDie("tx { a := map.get(0) }")});
  StuckEngine E(M);

  SchedulerConfig SC;
  SC.Policy = SchedulePolicy::PriorityChangePoints;
  SC.Seed = 7;
  SC.MaxSteps = 2000;
  RunStats St = Scheduler(SC).run(E);
  EXPECT_EQ(St.SchedulerSteps, 2000u);
  EXPECT_EQ(St.BlockedSteps, 2000u);
  EXPECT_FALSE(St.Quiescent);
}
