//===- tests/spec_queue_test.cpp - QueueSpec --------------------------------===//

#include "spec/QueueSpec.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pushpull;
using testutil::hintDisagreements;
using testutil::mkOp;

namespace {

QueueSpec spec() { return QueueSpec("q", 2, 2); }

Operation enq(Value V, Value R, OpId Id = 1) {
  return mkOp(Id, "q", "enq", {V}, R);
}
Operation deq(Value R, OpId Id = 1) { return mkOp(Id, "q", "deq", {}, R); }
Operation size(Value R, OpId Id = 1) { return mkOp(Id, "q", "size", {}, R); }

} // namespace

TEST(QueueSpec, EmptyInitially) {
  QueueSpec S = spec();
  EXPECT_TRUE(S.allowed({deq(QueueSpec::Empty), size(0, 2)}));
  EXPECT_FALSE(S.allowed({deq(0)}));
}

TEST(QueueSpec, FifoOrder) {
  QueueSpec S = spec();
  EXPECT_TRUE(
      S.allowed({enq(0, 1, 1), enq(1, 1, 2), deq(0, 3), deq(1, 4)}));
  EXPECT_FALSE(
      S.allowed({enq(0, 1, 1), enq(1, 1, 2), deq(1, 3)}));
}

TEST(QueueSpec, CapacityBounds) {
  QueueSpec S = spec();
  EXPECT_TRUE(S.allowed({enq(0, 1, 1), enq(0, 1, 2), enq(1, 0, 3)}));
  EXPECT_FALSE(S.allowed({enq(0, 1, 1), enq(0, 1, 2), enq(1, 1, 3)}));
}

TEST(QueueSpec, SizeObserves) {
  QueueSpec S = spec();
  EXPECT_TRUE(S.allowed({enq(1, 1, 1), size(1, 2), deq(1, 3), size(0, 4)}));
  EXPECT_FALSE(S.allowed({enq(1, 1, 1), size(0, 2)}));
}

TEST(QueueSpec, PrefixClosed) {
  QueueSpec S = spec();
  std::vector<Operation> Log = {enq(0, 1, 1), enq(1, 1, 2), deq(0, 3),
                                enq(0, 1, 4), deq(1, 5)};
  ASSERT_TRUE(S.allowed(Log));
  for (size_t N = 0; N <= Log.size(); ++N)
    EXPECT_TRUE(S.allowed({Log.begin(), Log.begin() + N}));
}

TEST(QueueSpec, EnqueuesOfDifferentValuesDoNotCommute) {
  // The deliberately non-commutative spec: FIFO order is observable.
  QueueSpec S = spec();
  MoverChecker Movers(S);
  EXPECT_EQ(Movers.leftMover(enq(0, 1), enq(1, 1)), Tri::No);
  EXPECT_EQ(Movers.leftMover(enq(1, 1), enq(1, 1)), Tri::Yes);
}

TEST(QueueSpec, DequeueOrderMatters) {
  QueueSpec S = spec();
  MoverChecker Movers(S);
  // deq=v then enq(u): reordering changes which element deq sees when the
  // queue holds one element of a different value.
  EXPECT_EQ(Movers.leftMover(deq(0), enq(1, 1)), Tri::No);
  // Successful enq then a deq of *that same* value: moving the deq first
  // would see the older front (or empty).
  EXPECT_EQ(Movers.leftMover(enq(0, 1), deq(0)), Tri::No);
}

TEST(QueueSpec, HintOnlyObjectDisjointness) {
  QueueSpec S = spec();
  EXPECT_EQ(S.leftMoverHint(enq(0, 1), mkOp(2, "other", "m", {})), Tri::Yes);
  EXPECT_EQ(S.leftMoverHint(enq(0, 1), enq(1, 1)), Tri::Unknown);
  EXPECT_EQ(hintDisagreements(S), std::vector<std::string>{});
}

TEST(QueueSpec, Completions) {
  QueueSpec S = spec();
  auto C = S.completionsFrom(S.initial(), {"q", "deq", {}});
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0].Result, QueueSpec::Empty);
  StateSet After = S.denote({enq(1, 1, 1)});
  auto C2 = S.completionsFrom(After, {"q", "deq", {}});
  ASSERT_EQ(C2.size(), 1u);
  EXPECT_EQ(C2[0].Result, Value(1));
  auto C3 = S.completionsFrom(After, {"q", "enq", {0}});
  ASSERT_EQ(C3.size(), 1u);
  EXPECT_EQ(C3[0].Result, Value(1));
}

TEST(QueueSpec, DomainChecks) {
  QueueSpec S = spec();
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"q", "enq", {9}}).empty());
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"q", "peek", {}}).empty());
}
