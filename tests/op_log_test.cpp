//===- tests/op_log_test.cpp - Stacks, operations, logs ---------------------===//

#include "core/Log.h"
#include "core/Op.h"

#include <gtest/gtest.h>

using namespace pushpull;

namespace {

Operation op(OpId Id, const std::string &Obj, const std::string &Mth,
             std::vector<Value> Args = {},
             std::optional<Value> Result = std::nullopt) {
  Operation O;
  O.Call = {Obj, Mth, std::move(Args)};
  O.Result = Result;
  O.Id = Id;
  return O;
}

LocalEntry localEntry(OpId Id, LocalKind K) {
  LocalEntry E;
  E.Op = op(Id, "o", "m");
  E.Kind = K;
  return E;
}

GlobalEntry globalEntry(OpId Id, GlobalKind K, TxId Owner = 0) {
  GlobalEntry E;
  E.Op = op(Id, "o", "m");
  E.Kind = K;
  E.Owner = Owner;
  return E;
}

} // namespace

TEST(Stack, GetSetBind) {
  Stack S;
  EXPECT_TRUE(S.empty());
  EXPECT_FALSE(S.get("x").has_value());
  S.set("x", 5);
  EXPECT_EQ(S.getOrDie("x"), 5);
  Stack S2 = S.bind("y", 7);
  EXPECT_FALSE(S.get("y").has_value()) << "bind must not mutate";
  EXPECT_EQ(S2.getOrDie("x"), 5);
  EXPECT_EQ(S2.getOrDie("y"), 7);
  EXPECT_EQ(S2.size(), 2u);
}

TEST(Stack, EqualityAndPrinting) {
  Stack A, B;
  A.set("x", 1);
  B.set("x", 1);
  EXPECT_EQ(A, B);
  B.set("y", 2);
  EXPECT_NE(A, B);
  EXPECT_EQ(A.toString(), "[x->1]");
}

TEST(Operation, IdentityIsById) {
  Operation A = op(1, "s", "add", {3}, 1);
  Operation B = op(1, "s", "remove", {4}, 0);
  Operation C = op(2, "s", "add", {3}, 1);
  EXPECT_TRUE(A.sameIdAs(B));
  EXPECT_FALSE(A.sameIdAs(C));
}

TEST(Operation, Printing) {
  EXPECT_EQ(op(7, "set", "add", {3}, 1).toString(), "#7:set.add(3)=1");
  EXPECT_EQ(op(2, "c", "inc", {0}).toString(), "#2:c.inc(0)");
}

TEST(OpIdSource, Monotone) {
  OpIdSource Ids;
  OpId A = Ids.fresh(), B = Ids.fresh(), C = Ids.fresh();
  EXPECT_LT(A, B);
  EXPECT_LT(B, C);
  EXPECT_EQ(Ids.lastIssued(), C);
}

TEST(LocalLog, AppendIndexContains) {
  LocalLog L;
  L.append(localEntry(1, LocalKind::NotPushed));
  L.append(localEntry(2, LocalKind::Pushed));
  L.append(localEntry(3, LocalKind::Pulled));
  EXPECT_EQ(L.size(), 3u);
  EXPECT_EQ(L.indexOf(2), 1u);
  EXPECT_EQ(L.indexOf(9), LocalLog::npos);
  EXPECT_TRUE(L.contains(3));
  EXPECT_FALSE(L.contains(4));
}

TEST(LocalLog, Projections) {
  LocalLog L;
  L.append(localEntry(1, LocalKind::NotPushed));
  L.append(localEntry(2, LocalKind::Pushed));
  L.append(localEntry(3, LocalKind::Pulled));
  L.append(localEntry(4, LocalKind::NotPushed));
  auto NP = L.project(LocalKind::NotPushed);
  ASSERT_EQ(NP.size(), 2u);
  EXPECT_EQ(NP[0].Id, 1u);
  EXPECT_EQ(NP[1].Id, 4u);
  auto Own = L.ownOps();
  ASSERT_EQ(Own.size(), 3u);
  EXPECT_EQ(Own[0].Id, 1u);
  EXPECT_EQ(Own[1].Id, 2u);
  EXPECT_EQ(Own[2].Id, 4u);
  EXPECT_EQ(L.indicesOf(LocalKind::Pulled), (std::vector<size_t>{2}));
}

TEST(LocalLog, OpsOmitting) {
  LocalLog L;
  L.append(localEntry(1, LocalKind::NotPushed));
  L.append(localEntry(2, LocalKind::NotPushed));
  L.append(localEntry(3, LocalKind::NotPushed));
  auto Ops = L.opsOmitting(1);
  ASSERT_EQ(Ops.size(), 2u);
  EXPECT_EQ(Ops[0].Id, 1u);
  EXPECT_EQ(Ops[1].Id, 3u);
}

TEST(LocalLog, TruncateAndRemove) {
  LocalLog L;
  L.append(localEntry(1, LocalKind::NotPushed));
  L.append(localEntry(2, LocalKind::NotPushed));
  L.append(localEntry(3, LocalKind::NotPushed));
  L.removeAt(0);
  EXPECT_EQ(L[0].Op.Id, 2u);
  L.truncate(1);
  EXPECT_EQ(L.size(), 1u);
  EXPECT_EQ(L[0].Op.Id, 2u);
}

TEST(LocalLog, SetKind) {
  LocalLog L;
  L.append(localEntry(1, LocalKind::NotPushed));
  L.setKind(0, LocalKind::Pushed);
  EXPECT_EQ(L[0].Kind, LocalKind::Pushed);
}

TEST(GlobalLog, MinusRemovesLocalOps) {
  GlobalLog G;
  G.append(globalEntry(1, GlobalKind::Committed));
  G.append(globalEntry(2, GlobalKind::Uncommitted));
  G.append(globalEntry(3, GlobalKind::Uncommitted));
  LocalLog L;
  L.append(localEntry(2, LocalKind::Pushed));
  auto Rest = G.minus(L);
  ASSERT_EQ(Rest.size(), 2u);
  EXPECT_EQ(Rest[0].Id, 1u);
  EXPECT_EQ(Rest[1].Id, 3u);
}

TEST(GlobalLog, UncommittedNotIn) {
  GlobalLog G;
  G.append(globalEntry(1, GlobalKind::Committed));
  G.append(globalEntry(2, GlobalKind::Uncommitted));
  G.append(globalEntry(3, GlobalKind::Uncommitted));
  LocalLog L;
  L.append(localEntry(3, LocalKind::Pushed));
  auto U = G.uncommittedNotIn(L);
  ASSERT_EQ(U.size(), 1u);
  EXPECT_EQ(U[0].Id, 2u);
}

TEST(GlobalLog, ContainsAll) {
  GlobalLog G;
  G.append(globalEntry(1, GlobalKind::Uncommitted));
  G.append(globalEntry(2, GlobalKind::Uncommitted));
  LocalLog L;
  L.append(localEntry(1, LocalKind::Pushed));
  EXPECT_TRUE(G.containsAll(L));
  L.append(localEntry(5, LocalKind::Pushed));
  EXPECT_FALSE(G.containsAll(L));
}

TEST(GlobalLog, CommitOwnedFlipsOnlyOwned) {
  GlobalLog G;
  G.append(globalEntry(1, GlobalKind::Uncommitted));
  G.append(globalEntry(2, GlobalKind::Uncommitted));
  G.append(globalEntry(3, GlobalKind::Committed));
  LocalLog L;
  L.append(localEntry(1, LocalKind::Pushed));
  G.commitOwned(L);
  EXPECT_EQ(G[0].Kind, GlobalKind::Committed);
  EXPECT_EQ(G[1].Kind, GlobalKind::Uncommitted);
  EXPECT_EQ(G[2].Kind, GlobalKind::Committed);
}

TEST(GlobalLog, ProjectKeepsOrder) {
  GlobalLog G;
  G.append(globalEntry(1, GlobalKind::Committed));
  G.append(globalEntry(2, GlobalKind::Uncommitted));
  G.append(globalEntry(3, GlobalKind::Committed));
  auto C = G.project(GlobalKind::Committed);
  ASSERT_EQ(C.size(), 2u);
  EXPECT_EQ(C[0].Id, 1u);
  EXPECT_EQ(C[1].Id, 3u);
}

TEST(FlagNames, Render) {
  EXPECT_EQ(toString(LocalKind::NotPushed), "npshd");
  EXPECT_EQ(toString(LocalKind::Pushed), "pshd");
  EXPECT_EQ(toString(LocalKind::Pulled), "pld");
  EXPECT_EQ(toString(GlobalKind::Uncommitted), "gUCmt");
  EXPECT_EQ(toString(GlobalKind::Committed), "gCmt");
}
