//===- tests/spec_map_test.cpp - MapSpec ------------------------------------===//

#include "spec/MapSpec.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace pushpull;
using testutil::hintDisagreements;
using testutil::mkOp;

namespace {

MapSpec spec() { return MapSpec("ht", 3, 2); }

Operation put(Value K, Value V, Value Old, OpId Id = 1) {
  return mkOp(Id, "ht", "put", {K, V}, Old);
}
Operation get(Value K, Value R, OpId Id = 1) {
  return mkOp(Id, "ht", "get", {K}, R);
}
Operation rem(Value K, Value R, OpId Id = 1) {
  return mkOp(Id, "ht", "remove", {K}, R);
}
Operation hasKey(Value K, Value R, OpId Id = 1) {
  return mkOp(Id, "ht", "containsKey", {K}, R);
}

} // namespace

TEST(MapSpec, InitiallyAbsent) {
  MapSpec S = spec();
  EXPECT_TRUE(S.allowed({get(0, MapSpec::Absent)}));
  EXPECT_FALSE(S.allowed({get(0, 0)}));
  EXPECT_TRUE(S.allowed({hasKey(1, 0)}));
}

TEST(MapSpec, PutReturnsPrevious) {
  MapSpec S = spec();
  // First put returns Absent (Figure 2's "insert" case)...
  EXPECT_TRUE(S.allowed({put(1, 0, MapSpec::Absent, 1)}));
  // ...second returns the old value (the "update" case).
  EXPECT_TRUE(S.allowed({put(1, 0, MapSpec::Absent, 1), put(1, 1, 0, 2)}));
  EXPECT_FALSE(S.allowed({put(1, 0, 1, 1)}));
}

TEST(MapSpec, Figure2InverseLaws) {
  // The abort path of Figure 2: put returning Absent is inverted by
  // remove; put returning old is inverted by put(key, old).  Both
  // inverses restore a state where get sees the original mapping.
  MapSpec S = spec();
  EXPECT_TRUE(S.allowed({put(1, 0, MapSpec::Absent, 1), rem(1, 0, 2),
                         get(1, MapSpec::Absent, 3)}));
  EXPECT_TRUE(S.allowed({put(1, 0, MapSpec::Absent, 1), put(1, 1, 0, 2),
                         put(1, 0, 1, 3), get(1, 0, 4)}));
}

TEST(MapSpec, RemoveAndContains) {
  MapSpec S = spec();
  EXPECT_TRUE(S.allowed({put(2, 1, MapSpec::Absent, 1), hasKey(2, 1, 2),
                         rem(2, 1, 3), hasKey(2, 0, 4)}));
  EXPECT_TRUE(S.allowed({rem(0, MapSpec::Absent, 1)}));
}

TEST(MapSpec, PrefixClosed) {
  MapSpec S = spec();
  std::vector<Operation> Log = {put(0, 1, MapSpec::Absent, 1),
                                put(1, 0, MapSpec::Absent, 2), get(0, 1, 3),
                                rem(0, 1, 4), get(0, MapSpec::Absent, 5)};
  ASSERT_TRUE(S.allowed(Log));
  for (size_t N = 0; N <= Log.size(); ++N)
    EXPECT_TRUE(S.allowed({Log.begin(), Log.begin() + N}));
}

TEST(MapSpec, CompletionsTrackState) {
  MapSpec S = spec();
  auto C = S.completionsFrom(S.initial(), {"ht", "put", {0, 1}});
  ASSERT_EQ(C.size(), 1u);
  EXPECT_EQ(C[0].Result, MapSpec::Absent);
  StateSet After = S.denote({put(0, 1, MapSpec::Absent, 1)});
  auto C2 = S.completionsFrom(After, {"ht", "get", {0}});
  ASSERT_EQ(C2.size(), 1u);
  EXPECT_EQ(C2[0].Result, Value(1));
}

TEST(MapSpec, DomainChecks) {
  MapSpec S = spec();
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"ht", "get", {9}}).empty());
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"ht", "put", {0, 5}}).empty());
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"ht", "clear", {}}).empty());
}

TEST(MapSpec, DistinctKeysCommute) {
  MapSpec S = spec();
  EXPECT_EQ(S.leftMoverHint(put(0, 1, MapSpec::Absent),
                            put(1, 1, MapSpec::Absent)),
            Tri::Yes);
  EXPECT_EQ(S.leftMoverHint(get(0, MapSpec::Absent), rem(2, MapSpec::Absent)),
            Tri::Yes);
}

TEST(MapSpec, SameKeyConflicts) {
  MapSpec S = spec();
  // Two inserting puts on the same key: the second must see the first.
  EXPECT_EQ(S.leftMoverHint(put(0, 1, MapSpec::Absent), put(0, 1, 1)),
            Tri::No);
  // get=v after put(v) cannot move before it.
  EXPECT_EQ(S.leftMoverHint(put(0, 1, MapSpec::Absent), get(0, 1)), Tri::No);
  // Two gets commute.
  EXPECT_EQ(S.leftMoverHint(get(0, MapSpec::Absent), get(0, MapSpec::Absent)),
            Tri::Yes);
}

TEST(MapSpec, HintAgreesWithSemantics) {
  EXPECT_EQ(hintDisagreements(spec()), std::vector<std::string>{});
}

TEST(MapSpec, Name) { EXPECT_EQ(spec().name(), "map(ht,k=3,v=2)"); }
