//===- tests/fuzz_smoke_test.cpp - Differential fuzz smoke campaign -----------===//
//
// The tier-1 fuzz gate: a short fixed-seed differential campaign over all
// ten engines and all seven spec kinds.  Fails on any model/implementation
// discrepancy and on any engine that finished the campaign without
// exercising its whole expected rule set — i.e. both "the engines are
// correct under the model's three ground truths" and "the fuzzer actually
// tested them".
//
//===----------------------------------------------------------------------===//

#include "fuzz/Campaign.h"

#include <gtest/gtest.h>

#include <set>

using namespace pushpull;

namespace {

CampaignConfig smokeConfig() {
  CampaignConfig C;
  C.Gen.Seed = 1;
  C.Runs = 140; // Two sweeps of the 10-engine x 7-spec-kind grid.
  C.MaxSeconds = 25;
  C.Verbose = false;
  C.ReproDir = ::testing::TempDir() + "/ppfuzz-smoke";
  return C;
}

} // namespace

TEST(FuzzSmoke, CampaignFindsNoDiscrepancies) {
  CampaignReport R = Campaign(smokeConfig()).run();
  EXPECT_EQ(R.Discrepancies, 0u) << R.toString();
  EXPECT_TRUE(R.uncoveredRules().empty()) << R.toString();
  EXPECT_TRUE(R.ok()) << R.toString();
  EXPECT_EQ(R.RunsDone, 140u) << "campaign hit its wall-clock budget";

  // Every engine ran and committed transactions (the campaign was not
  // spinning on aborts or build errors).
  ASSERT_EQ(R.PerEngine.size(), allEngineNames().size());
  uint32_t Union = 0;
  for (const auto &[Engine, Cov] : R.PerEngine) {
    EXPECT_GT(Cov.Runs, 0u) << Engine;
    EXPECT_GT(Cov.Commits, 0u) << Engine;
    EXPECT_EQ(Cov.Discrepancies, 0u) << Engine;
    Union |= Cov.observedMask();
  }
  // APP/UNAPP/PUSH/UNPUSH/PULL/UNPULL/CMT all fired somewhere.
  EXPECT_EQ(Union, 0x7Fu);

  // The interning/memoization context rode along with every report.
  EXPECT_GT(R.Caches.Intern.TransitionMemoHits, 0u);
  EXPECT_GT(R.Caches.Intern.StatesInterned, 0u);
}

TEST(FuzzSmoke, GeneratorCyclesTheEngineSpecGrid) {
  GeneratorConfig GC;
  GC.Seed = 3;
  Generator G(GC);
  std::set<std::pair<std::string, std::string>> Seen;
  size_t Pairs = allEngineNames().size() * (allSpecKinds().size() + 1);
  for (size_t I = 0; I < Pairs; ++I) {
    FuzzCase F = G.next();
    ASSERT_FALSE(F.Specs.empty());
    ASSERT_FALSE(F.Threads.empty());
    EXPECT_GT(F.totalOps(), 0u);
    Seen.insert({F.Engine,
                 F.Specs.size() > 1 ? "composite" : F.Specs[0].Kind});
  }
  // One full cycle covers every (engine, spec-kind) pair exactly once.
  EXPECT_EQ(Seen.size(), Pairs);
}

TEST(FuzzSmoke, CasesRoundTripThroughScenarioText) {
  // A case serialized to scenario text and re-parsed runs *identically* —
  // the property that makes written reproducers trustworthy.
  GeneratorConfig GC;
  GC.Seed = 11;
  Generator G(GC);
  DiffRunner Runner;
  for (int I = 0; I < 10; ++I) {
    FuzzCase F = G.next();
    DiffReport Direct = Runner.run(F);
    ASSERT_TRUE(Direct.Built) << Direct.BuildError;

    ScenarioParseResult PR = parseScenario(F.toScenarioText());
    ASSERT_TRUE(PR.ok()) << PR.Error << "\n" << F.toScenarioText();
    DiffReport Replayed = Runner.run(fromScenario(*PR.Parsed));
    ASSERT_TRUE(Replayed.Built) << Replayed.BuildError;

    EXPECT_EQ(Direct.Stats.toString(), Replayed.Stats.toString())
        << F.toScenarioText();
    EXPECT_EQ(Direct.Serializable, Replayed.Serializable);
  }
}

TEST(FuzzSmoke, ExpectedMasksCoverAllRulesJointly) {
  uint32_t Union = 0;
  for (const std::string &E : allEngineNames()) {
    uint32_t Mask = expectedRuleMask(E);
    EXPECT_NE(Mask, 0u) << E;
    Union |= Mask;
  }
  EXPECT_EQ(Union, 0x7Fu);
  EXPECT_EQ(expectedRuleMask("no-such-engine"), 0u);
}
