//===- tests/regress_test.cpp - Replay the regression corpus ------------------===//
//
// Replays every scenario under scenarios/regress/ through the full
// differential battery (atomic-oracle replay, opacity classification,
// per-rule invariants).  The corpus holds one minimal clinic per engine,
// each crafted to drive that engine through its rarest rules; a corpus
// file failing here means an engine regressed on a configuration that was
// once interesting enough to pin down.
//
//===----------------------------------------------------------------------===//

#include "fuzz/DiffRunner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

using namespace pushpull;

namespace {

std::filesystem::path regressDir() {
  return std::filesystem::path(PUSHPULL_SCENARIOS_DIR) / "regress";
}

std::vector<std::filesystem::path> corpusFiles() {
  std::vector<std::filesystem::path> Files;
  for (const auto &E : std::filesystem::directory_iterator(regressDir()))
    if (E.path().extension() == ".pp")
      Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

} // namespace

TEST(Regress, CorpusHasOneScenarioPerEngine) {
  std::set<std::string> Engines;
  for (const auto &Path : corpusFiles()) {
    std::ifstream In(Path);
    ASSERT_TRUE(In) << Path;
    std::ostringstream Buf;
    Buf << In.rdbuf();
    ScenarioParseResult PR = parseScenario(Buf.str());
    ASSERT_TRUE(PR.ok()) << Path << ": " << PR.Error;
    Engines.insert(PR.Parsed->Engine);
  }
  for (const std::string &E : allEngineNames())
    EXPECT_TRUE(Engines.count(E)) << "no regress scenario for engine " << E;
}

TEST(Regress, EveryScenarioReplaysCleanThroughTheDiffRunner) {
  uint64_t RuleTotals[7] = {};
  size_t N = 0;
  for (const auto &Path : corpusFiles()) {
    ++N;
    std::ifstream In(Path);
    std::ostringstream Buf;
    Buf << In.rdbuf();
    ScenarioParseResult PR = parseScenario(Buf.str());
    ASSERT_TRUE(PR.ok()) << Path << ": " << PR.Error;

    DiffReport R = DiffRunner().run(fromScenario(*PR.Parsed));
    ASSERT_TRUE(R.Built) << Path << ": " << R.BuildError;
    EXPECT_FALSE(R.discrepancy()) << Path << "\n" << R.toString();
    EXPECT_TRUE(R.Stats.Quiescent) << Path << "\n" << R.toString();
    EXPECT_EQ(R.Serializable, Tri::Yes) << Path << "\n" << R.toString();
    EXPECT_GT(R.RulesInvariantChecked, 0u) << Path;
    for (int K = 0; K < 7; ++K)
      RuleTotals[K] += R.Stats.RuleCounts[K];
  }
  EXPECT_GE(N, allEngineNames().size());

  // Jointly the clinics exercise every one of the seven rules.
  for (int K = 0; K < 7; ++K)
    EXPECT_GT(RuleTotals[K], 0u)
        << "corpus never fired " << toString(static_cast<RuleKind>(K));
}
