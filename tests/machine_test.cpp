//===- tests/machine_test.cpp - The seven rules of Figure 5 -----------------===//
//
// For every rule: a positive case and a negative case per criterion, with
// the machine naming the violated criterion; plus the reversibility laws
// (UNAPP o APP, UNPUSH o PUSH, UNPULL o PULL are identities).
//
//===----------------------------------------------------------------------===//

#include "core/Machine.h"

#include "check/Serializability.h"

#include "TestUtil.h"
#include "lang/Parser.h"
#include "spec/CompositeSpec.h"
#include "spec/CounterSpec.h"
#include "lang/Printer.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"

#include <gtest/gtest.h>

using namespace pushpull;

namespace {

/// Fixture bundling a spec, movers, and a machine.
struct RegisterRig {
  RegisterSpec Spec{"mem", 2, 3};
  MoverChecker Movers{Spec};
  PushPullMachine M{Spec, Movers};

  TxId addThread(const std::string &Tx) {
    TxId T = M.addThread({parseOrDie(Tx)});
    EXPECT_TRUE(M.beginTx(T));
    return T;
  }
};

struct SetRig {
  SetSpec Spec{"set", 4};
  MoverChecker Movers{Spec};
  PushPullMachine M{Spec, Movers};

  TxId addThread(const std::string &Tx) {
    TxId T = M.addThread({parseOrDie(Tx)});
    EXPECT_TRUE(M.beginTx(T));
    return T;
  }
};

/// Does the result contain a failing criterion with this name?
bool failedOn(const RuleResult &R, const std::string &Name) {
  for (const CriterionReport &C : R.Criteria)
    if (C.Name == Name && !C.holds())
      return true;
  return false;
}

} // namespace

// --- APP -------------------------------------------------------------------

TEST(App, AppliesAndBindsResult) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 2); v := mem.read(0) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  const ThreadState &Th = Rig.M.thread(T);
  EXPECT_EQ(Th.Sigma.getOrDie("v"), 2);
  ASSERT_EQ(Th.L.size(), 2u);
  EXPECT_EQ(Th.L[0].Kind, LocalKind::NotPushed);
  EXPECT_EQ(Th.L[1].Op.Result, Value(2));
  EXPECT_TRUE(fin(Th.Code));
}

TEST(App, RecordsPreStackAndPreCode) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { v := mem.read(0); mem.write(1, v) }");
  CodePtr Before = Rig.M.thread(T).Code;
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  const LocalEntry &E = Rig.M.thread(T).L[0];
  EXPECT_TRUE(E.Op.Pre.empty());
  EXPECT_EQ(E.Op.Post.getOrDie("v"), 0);
  EXPECT_TRUE(codeEquals(E.SavedCode, Before));
}

TEST(App, FreshIdsMonotone) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1); mem.write(0, 2) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  const LocalLog &L = Rig.M.thread(T).L;
  EXPECT_LT(L[0].Op.Id, L[1].Op.Id);
}

TEST(App, CriterionIIRejectsImpossibleCompletion) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { v := mem.read(0) }");
  RuleResult R = Rig.M.app(T, 0, 5); // No such completion.
  EXPECT_FALSE(R.Applied);
  EXPECT_TRUE(failedOn(R, "APP criterion (ii)"));
}

TEST(App, RejectsOutOfRangeStepChoice) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1) }");
  EXPECT_FALSE(Rig.M.app(T, 3, 0).Applied);
}

TEST(App, ChoicesEnumerateNondeterminism) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1) + mem.write(0, 2) }");
  EXPECT_EQ(Rig.M.appChoices(T).size(), 2u);
}

TEST(App, LocalViewSeesOwnEffects) {
  SetRig Rig;
  TxId T = Rig.addThread("tx { a := set.add(1); b := set.add(1) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  const ThreadState &Th = Rig.M.thread(T);
  EXPECT_EQ(Th.Sigma.getOrDie("a"), 1) << "first add inserts";
  EXPECT_EQ(Th.Sigma.getOrDie("b"), 0) << "second add sees the first";
}

// --- UNAPP -----------------------------------------------------------------

TEST(UnApp, InverseOfApp) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { v := mem.read(0); mem.write(0, 1) }");
  CodePtr Code0 = Rig.M.thread(T).Code;
  Stack Sigma0 = Rig.M.thread(T).Sigma;
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.unapp(T).Applied);
  EXPECT_TRUE(codeEquals(Rig.M.thread(T).Code, Code0));
  EXPECT_EQ(Rig.M.thread(T).Sigma, Sigma0);
  EXPECT_TRUE(Rig.M.thread(T).L.empty());
}

TEST(UnApp, RequiresNonEmptyLog) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1) }");
  EXPECT_FALSE(Rig.M.unapp(T).Applied);
}

TEST(UnApp, RefusesPushedTail) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T, 0).Applied);
  EXPECT_FALSE(Rig.M.unapp(T).Applied) << "pshd entries cannot be unapped";
}

// --- PUSH ------------------------------------------------------------------

TEST(Push, PublishesToGlobalLog) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  RuleResult R = Rig.M.push(T, 0);
  ASSERT_TRUE(R.Applied);
  ASSERT_EQ(Rig.M.global().size(), 1u);
  EXPECT_EQ(Rig.M.global()[0].Kind, GlobalKind::Uncommitted);
  EXPECT_EQ(Rig.M.global()[0].Owner, T);
  EXPECT_EQ(Rig.M.thread(T).L[0].Kind, LocalKind::Pushed);
}

TEST(Push, CriterionIIRejectsConflictWithOtherUncommitted) {
  RegisterRig Rig;
  TxId T0 = Rig.addThread("tx { v := mem.read(0) }");
  TxId T1 = Rig.addThread("tx { mem.write(0, 1) }");
  ASSERT_TRUE(Rig.M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T0, 0).Applied); // Uncommitted read of 0 in G.
  ASSERT_TRUE(Rig.M.app(T1, 0, 0).Applied);
  RuleResult R = Rig.M.push(T1, 0);
  EXPECT_FALSE(R.Applied) << "read=0 cannot move right of write(0,1)";
  EXPECT_TRUE(failedOn(R, "PUSH criterion (ii)"));
}

TEST(Push, CriterionIIIRejectsStaleRead) {
  RegisterRig Rig;
  TxId T0 = Rig.addThread("tx { v := mem.read(0) }");
  TxId T1 = Rig.addThread("tx { mem.write(0, 1) }");
  // T0 reads 0 locally (snapshot of the empty log).
  ASSERT_TRUE(Rig.M.app(T0, 0, 0).Applied);
  // T1 writes and commits.
  ASSERT_TRUE(Rig.M.app(T1, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T1, 0).Applied);
  ASSERT_TRUE(Rig.M.commit(T1).Applied);
  // T0's read=0 is now stale: G.read(0)=0 is not allowed.
  RuleResult R = Rig.M.push(T0, 0);
  EXPECT_FALSE(R.Applied);
  EXPECT_TRUE(failedOn(R, "PUSH criterion (iii)"));
}

TEST(Push, CriterionIPermitsOutOfOrderCommutative) {
  // Two blind-commutative ops (writes to different registers) pushed in
  // reverse APP order: criterion (i) checks the later-applied op moves
  // left over the earlier unpushed one — satisfied across registers.
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1); mem.write(1, 2) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  RuleResult R = Rig.M.push(T, 1); // Push the second op first.
  EXPECT_TRUE(R.Applied);
  EXPECT_TRUE(Rig.M.push(T, 0).Applied);
}

TEST(Push, CriterionIRejectsOutOfOrderConflicting) {
  // write(0,1) then write(0,2): pushing the second write first would
  // publish it as if it preceded the first — but write(0,2) cannot move
  // left of write(0,1) (the final values differ).  Note criterion (iii)
  // cannot catch this: blind writes are always allowed at the end of G.
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1); mem.write(0, 2) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  RuleResult R = Rig.M.push(T, 1);
  EXPECT_FALSE(R.Applied);
  EXPECT_TRUE(failedOn(R, "PUSH criterion (i)"));
}

TEST(Push, ReadOfOwnWriteMayPushFirstOnlyWhenMoverHolds) {
  // write(0,1) then read(0)=1: the read *can* move left of the write
  // (reading the written value), so criterion (i) holds for the
  // out-of-order push — but criterion (iii) still rejects it because G
  // does not yet contain the write.
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1); v := mem.read(0) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  RuleResult R = Rig.M.push(T, 1);
  EXPECT_FALSE(R.Applied);
  EXPECT_TRUE(failedOn(R, "PUSH criterion (iii)"));
  EXPECT_FALSE(failedOn(R, "PUSH criterion (i)"));
}

TEST(Push, RefusesAlreadyPushed) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T, 0).Applied);
  EXPECT_FALSE(Rig.M.push(T, 0).Applied);
}

// --- UNPUSH ----------------------------------------------------------------

TEST(UnPush, InverseOfPush) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T, 0).Applied);
  ASSERT_TRUE(Rig.M.unpush(T, 0).Applied);
  EXPECT_TRUE(Rig.M.global().empty());
  EXPECT_EQ(Rig.M.thread(T).L[0].Kind, LocalKind::NotPushed);
}

TEST(UnPush, RefusesCommittedOperation) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T, 0).Applied);
  // Commit flips the entry to gCmt; a fresh transaction cannot unpush it
  // (and the committing thread's local log is gone anyway).  Exercise the
  // flag check through a second uncommitted op.
  TxId T2 = Rig.addThread("tx { mem.write(1, 1) }");
  ASSERT_TRUE(Rig.M.app(T2, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T2, 0).Applied);
  ASSERT_TRUE(Rig.M.commit(T2).Applied);
  EXPECT_FALSE(Rig.M.unpush(T2, 0).Applied) << "no transaction in progress";
}

TEST(UnPush, CriterionIIRejectsWhenLaterOpsDepend) {
  // T0 pushes write(0,1); T1 pulls it (dependent) and publishes
  // read(0)=1.  T0's unpush would leave G = [read(0)=1], which is not
  // allowed.  Note the criteria themselves prevent T1's dependent
  // publication (PUSH criterion (ii) counts pulled-but-foreign ops), so
  // the configuration is built in Trusting mode and only the UNPUSH is
  // probed under full validation.
  RegisterRig Rig;
  MachineConfig Trusting;
  Trusting.Level = ValidationLevel::Trusting;
  PushPullMachine M(Rig.Spec, Rig.Movers, Trusting);
  TxId T0 = M.addThread({parseOrDie("tx { mem.write(0, 1) }")});
  TxId T1 = M.addThread({parseOrDie("tx { v := mem.read(0) }")});
  ASSERT_TRUE(M.beginTx(T0));
  ASSERT_TRUE(M.beginTx(T1));
  ASSERT_TRUE(M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(M.push(T0, 0).Applied);
  ASSERT_TRUE(M.pull(T1, 0).Applied);
  ASSERT_TRUE(M.app(T1, 0, 0).Applied);
  EXPECT_EQ(M.thread(T1).Sigma.getOrDie("v"), 1) << "saw uncommitted write";
  ASSERT_TRUE(M.push(T1, 1).Applied);
  M.setConfig(MachineConfig()); // Criteria mode for the probe.
  RuleResult R = M.unpush(T0, 0);
  EXPECT_FALSE(R.Applied);
  EXPECT_TRUE(failedOn(R, "UNPUSH criterion (ii)"));
}

TEST(Push, CriterionIICountsPulledForeignOps) {
  // A pulled uncommitted operation still constrains publication: T1
  // pulls T0's write and may *view* it, but cannot publish a conflicting
  // read of it until T0 commits (this is what keeps dependent
  // transactions serializable in commit order).
  RegisterRig Rig;
  TxId T0 = Rig.addThread("tx { mem.write(0, 1) }");
  TxId T1 = Rig.addThread("tx { v := mem.read(0) }");
  ASSERT_TRUE(Rig.M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T0, 0).Applied);
  ASSERT_TRUE(Rig.M.pull(T1, 0).Applied);
  ASSERT_TRUE(Rig.M.app(T1, 0, 0).Applied);
  EXPECT_EQ(Rig.M.thread(T1).Sigma.getOrDie("v"), 1);
  RuleResult R = Rig.M.push(T1, 1);
  EXPECT_FALSE(R.Applied);
  EXPECT_TRUE(failedOn(R, "PUSH criterion (ii)"));
  // After T0 commits, the publication goes through.
  ASSERT_TRUE(Rig.M.commit(T0).Applied);
  EXPECT_TRUE(Rig.M.push(T1, 1).Applied);
  EXPECT_TRUE(Rig.M.commit(T1).Applied);
}

TEST(UnPush, OutOfOrderRetraction) {
  // Push a, push b, unpush a (not last-pushed): legal when independent.
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1); mem.write(1, 2) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T, 1).Applied);
  EXPECT_TRUE(Rig.M.unpush(T, 0).Applied);
  ASSERT_EQ(Rig.M.global().size(), 1u);
  EXPECT_EQ(Rig.M.global()[0].Op.Call.Args[0], Value(1));
}

// --- PULL ------------------------------------------------------------------

TEST(Pull, ViewsCommittedEffect) {
  RegisterRig Rig;
  TxId T0 = Rig.addThread("tx { mem.write(0, 2) }");
  TxId T1 = Rig.addThread("tx { v := mem.read(0) }");
  ASSERT_TRUE(Rig.M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T0, 0).Applied);
  ASSERT_TRUE(Rig.M.commit(T0).Applied);
  ASSERT_TRUE(Rig.M.pull(T1, 0).Applied);
  EXPECT_EQ(Rig.M.thread(T1).L[0].Kind, LocalKind::Pulled);
  // The pulled write now shapes the read's completion.
  ASSERT_TRUE(Rig.M.app(T1, 0, 0).Applied);
  EXPECT_EQ(Rig.M.thread(T1).Sigma.getOrDie("v"), 2);
}

TEST(Pull, CriterionIRejectsDoublePull) {
  RegisterRig Rig;
  TxId T0 = Rig.addThread("tx { mem.write(0, 2) }");
  TxId T1 = Rig.addThread("tx { v := mem.read(0) }");
  ASSERT_TRUE(Rig.M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T0, 0).Applied);
  ASSERT_TRUE(Rig.M.commit(T0).Applied);
  ASSERT_TRUE(Rig.M.pull(T1, 0).Applied);
  RuleResult R = Rig.M.pull(T1, 0);
  EXPECT_FALSE(R.Applied);
  EXPECT_TRUE(failedOn(R, "PULL criterion (i)"));
}

TEST(Pull, CriterionIIRejectsInconsistentView) {
  // T0 commits write(0,2) and read(0)=2.  T1, which read 0 from its empty
  // view, tries to pull T0's committed *read*: the local log
  // [read(0)=0, read(0)=2] is disallowed — criterion (ii).
  RegisterRig Rig;
  TxId T0 = Rig.addThread("tx { mem.write(0, 2); u := mem.read(0) }");
  TxId T1 = Rig.addThread("tx { v := mem.read(0); w := mem.read(0) }");
  ASSERT_TRUE(Rig.M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T0, 0).Applied);
  ASSERT_TRUE(Rig.M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T0, 1).Applied);
  ASSERT_TRUE(Rig.M.commit(T0).Applied);
  ASSERT_TRUE(Rig.M.app(T1, 0, 0).Applied); // read(0)=0 off the empty view.
  RuleResult R = Rig.M.pull(T1, 1); // T0's committed read(0)=2.
  EXPECT_FALSE(R.Applied);
  EXPECT_TRUE(failedOn(R, "PULL criterion (ii)"));
}

TEST(Pull, GrayCriterionIIIRejectsConflictingCommittedPull) {
  // Pulling a committed *write* after reading the old value: the local
  // log [read(0)=0, write(0,2)] is allowed (criterion (ii) passes), but
  // the gray criterion (iii) rejects it — our read cannot move right of
  // the pulled write, so we could not pretend the write preceded us.
  // Without this criterion the pull would succeed and the transaction
  // would wedge: its stale read(0)=0 can never pass PUSH criterion
  // (iii), so CMT criterion (ii) stays unsatisfiable (safety holds
  // regardless; see the explorer's gray-criteria ablation).
  RegisterRig Rig;
  TxId T0 = Rig.addThread("tx { mem.write(0, 2) }");
  TxId T1 = Rig.addThread("tx { v := mem.read(0); w := mem.read(0) }");
  // T1 reads 0 locally but does NOT push (else T0's publication would be
  // blocked by PUSH criterion (ii) — serializability protecting itself).
  ASSERT_TRUE(Rig.M.app(T1, 0, 0).Applied); // read(0)=0
  ASSERT_TRUE(Rig.M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T0, 0).Applied);
  ASSERT_TRUE(Rig.M.commit(T0).Applied);
  RuleResult R = Rig.M.pull(T1, Rig.M.global().size() - 1);
  EXPECT_FALSE(R.Applied);
  EXPECT_TRUE(failedOn(R, "PULL criterion (iii)"));
  EXPECT_FALSE(failedOn(R, "PULL criterion (ii)"));
}

TEST(Pull, UncommittedPullEstablishesDependency) {
  RegisterRig Rig;
  TxId T0 = Rig.addThread("tx { mem.write(0, 1) }");
  TxId T1 = Rig.addThread("tx { v := mem.read(0) }");
  ASSERT_TRUE(Rig.M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T0, 0).Applied);
  ASSERT_TRUE(Rig.M.pull(T1, 0).Applied);
  // The trace marks the pull as uncommitted — the opacity signal.
  bool Saw = false;
  for (const TraceEvent &E : Rig.M.trace().events())
    if (E.Rule == RuleKind::Pull && E.PulledUncommitted)
      Saw = true;
  EXPECT_TRUE(Saw);
}

// --- UNPULL ----------------------------------------------------------------

TEST(UnPull, InverseOfPull) {
  RegisterRig Rig;
  TxId T0 = Rig.addThread("tx { mem.write(0, 2) }");
  TxId T1 = Rig.addThread("tx { v := mem.read(0) }");
  ASSERT_TRUE(Rig.M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T0, 0).Applied);
  ASSERT_TRUE(Rig.M.commit(T0).Applied);
  ASSERT_TRUE(Rig.M.pull(T1, 0).Applied);
  ASSERT_TRUE(Rig.M.unpull(T1, 0).Applied);
  EXPECT_TRUE(Rig.M.thread(T1).L.empty());
}

TEST(UnPull, CriterionIRejectsWhenDependedUpon) {
  RegisterRig Rig;
  TxId T0 = Rig.addThread("tx { mem.write(0, 2) }");
  TxId T1 = Rig.addThread("tx { v := mem.read(0) }");
  ASSERT_TRUE(Rig.M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T0, 0).Applied);
  ASSERT_TRUE(Rig.M.commit(T0).Applied);
  ASSERT_TRUE(Rig.M.pull(T1, 0).Applied);
  ASSERT_TRUE(Rig.M.app(T1, 0, 0).Applied); // read(0)=2 depends on pull.
  RuleResult R = Rig.M.unpull(T1, 0);
  EXPECT_FALSE(R.Applied);
  EXPECT_TRUE(failedOn(R, "UNPULL criterion (i)"));
}

TEST(UnPull, RefusesNonPulledEntry) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  EXPECT_FALSE(Rig.M.unpull(T, 0).Applied);
}

// --- CMT -------------------------------------------------------------------

TEST(Cmt, CommitsAndClearsThread) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T, 0).Applied);
  ASSERT_TRUE(Rig.M.commit(T).Applied);
  EXPECT_FALSE(Rig.M.thread(T).InTx);
  EXPECT_TRUE(Rig.M.thread(T).L.empty());
  ASSERT_EQ(Rig.M.global().size(), 1u);
  EXPECT_EQ(Rig.M.global()[0].Kind, GlobalKind::Committed);
  ASSERT_EQ(Rig.M.committed().size(), 1u);
  EXPECT_EQ(Rig.M.committed()[0].Tid, T);
  EXPECT_TRUE(Rig.M.quiescent());
}

TEST(Cmt, CriterionIRejectsUnfinishedCode) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1) }");
  RuleResult R = Rig.M.commit(T);
  EXPECT_FALSE(R.Applied);
  EXPECT_TRUE(failedOn(R, "CMT criterion (i)"));
}

TEST(Cmt, CriterionIIRejectsUnpushedOps) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1) }");
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  RuleResult R = Rig.M.commit(T);
  EXPECT_FALSE(R.Applied);
  EXPECT_TRUE(failedOn(R, "CMT criterion (ii)"));
}

TEST(Cmt, CriterionIIIRejectsUncommittedDependency) {
  // Counters: T1 pulls T0's uncommitted inc (a dependency) and performs
  // its own commuting inc, which publishes fine — but CMT criterion (iii)
  // gates T1's commit until T0 commits.
  CounterSpec Spec("c", 1, 8);
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  TxId T0 = M.addThread({parseOrDie("tx { c.inc(0) }")});
  TxId T1 = M.addThread({parseOrDie("tx { c.inc(0) }")});
  ASSERT_TRUE(M.beginTx(T0));
  ASSERT_TRUE(M.beginTx(T1));
  ASSERT_TRUE(M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(M.push(T0, 0).Applied);
  ASSERT_TRUE(M.pull(T1, 0).Applied); // Dependency on uncommitted T0.
  ASSERT_TRUE(M.app(T1, 0, 0).Applied);
  ASSERT_TRUE(M.push(T1, 1).Applied) << "commuting publication is fine";
  RuleResult R = M.commit(T1);
  EXPECT_FALSE(R.Applied);
  EXPECT_TRUE(failedOn(R, "CMT criterion (iii)"));
  // Once T0 commits, T1 may too.
  ASSERT_TRUE(M.commit(T0).Applied);
  EXPECT_TRUE(M.commit(T1).Applied);
}

TEST(Cmt, ThreadRunsItsNextTransaction) {
  RegisterRig Rig;
  TxId T = Rig.M.addThread(
      {parseOrDie("tx { mem.write(0, 1) }"), parseOrDie("tx { mem.write(0, 2) }")});
  ASSERT_TRUE(Rig.M.beginTx(T));
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T, 0).Applied);
  ASSERT_TRUE(Rig.M.commit(T).Applied);
  EXPECT_FALSE(Rig.M.quiescent());
  ASSERT_TRUE(Rig.M.beginTx(T));
  ASSERT_TRUE(Rig.M.app(T, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T, 0).Applied);
  ASSERT_TRUE(Rig.M.commit(T).Applied);
  EXPECT_TRUE(Rig.M.quiescent());
  EXPECT_EQ(Rig.M.thread(T).Commits, 2u);
}

// --- Machine-wide behaviours -------------------------------------------------

TEST(Machine, TrustingModeSkipsSemanticCriteria) {
  RegisterSpec Spec("mem", 2, 3);
  MoverChecker Movers(Spec);
  MachineConfig MC;
  MC.Level = ValidationLevel::Trusting;
  PushPullMachine M(Spec, Movers, MC);
  TxId T0 = M.addThread({parseOrDie("tx { v := mem.read(0) }")});
  TxId T1 = M.addThread({parseOrDie("tx { mem.write(0, 1) }")});
  ASSERT_TRUE(M.beginTx(T0));
  ASSERT_TRUE(M.beginTx(T1));
  ASSERT_TRUE(M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(M.push(T0, 0).Applied);
  ASSERT_TRUE(M.app(T1, 0, 0).Applied);
  // In Criteria mode this push would be rejected (criterion (ii)).
  EXPECT_TRUE(M.push(T1, 0).Applied);
}

TEST(Machine, RejectedRulesLeaveStateUntouched) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { v := mem.read(0) }");
  std::string Before = Rig.M.toString();
  size_t TraceBefore = Rig.M.trace().size();
  EXPECT_FALSE(Rig.M.commit(T).Applied);
  EXPECT_FALSE(Rig.M.unapp(T).Applied);
  EXPECT_FALSE(Rig.M.push(T, 5).Applied);
  EXPECT_FALSE(Rig.M.pull(T, 5).Applied);
  EXPECT_EQ(Rig.M.toString(), Before);
  EXPECT_EQ(Rig.M.trace().size(), TraceBefore);
}

TEST(Machine, CommittedLogProjection) {
  RegisterRig Rig;
  TxId T0 = Rig.addThread("tx { mem.write(0, 1) }");
  TxId T1 = Rig.addThread("tx { mem.write(1, 1) }");
  ASSERT_TRUE(Rig.M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T0, 0).Applied);
  ASSERT_TRUE(Rig.M.commit(T0).Applied);
  ASSERT_TRUE(Rig.M.app(T1, 0, 0).Applied);
  ASSERT_TRUE(Rig.M.push(T1, 0).Applied);
  EXPECT_EQ(Rig.M.committedLog().size(), 1u) << "uncommitted excluded";
}

TEST(Machine, BeginTxRequiresIdleThread) {
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1) }");
  EXPECT_FALSE(Rig.M.beginTx(T)) << "already in a transaction";
}

TEST(Machine, StripsTxWrapperOnAdd) {
  RegisterRig Rig;
  TxId T = Rig.M.addThread({parseOrDie("tx { skip }")});
  ASSERT_TRUE(Rig.M.beginTx(T));
  EXPECT_TRUE(fin(Rig.M.thread(T).Code));
  EXPECT_TRUE(Rig.M.commit(T).Applied) << "empty transaction commits";
}

TEST(Pull, NonChronologicalOrderAcrossObjects) {
  // Section 4's PULL discussion: "in a transaction that operates over
  // two shared data-structures a and b, it may PULL in the effects on a
  // even if they occurred after the effects on b."  Build committed
  // history b-then-a and pull a's effect first.
  RegisterSpec SpecA("a", 1, 3);
  RegisterSpec SpecB("b", 1, 3);
  CompositeSpec Spec;
  Spec.add("a", std::make_shared<RegisterSpec>("a", 1, 3));
  Spec.add("b", std::make_shared<RegisterSpec>("b", 1, 3));
  MoverChecker Movers(Spec);
  PushPullMachine M(Spec, Movers);
  TxId T0 = M.addThread({parseOrDie("tx { b.write(0, 1); a.write(0, 2) }")});
  TxId T1 = M.addThread({parseOrDie("tx { v := a.read(0) }")});
  ASSERT_TRUE(M.beginTx(T0));
  ASSERT_TRUE(M.beginTx(T1));
  ASSERT_TRUE(M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(M.push(T0, 0).Applied); // b first in G...
  ASSERT_TRUE(M.app(T0, 0, 0).Applied);
  ASSERT_TRUE(M.push(T0, 1).Applied); // ...a second.
  ASSERT_TRUE(M.commit(T0).Applied);
  // T1 pulls a's effect (G index 1) without ever pulling b's.
  ASSERT_TRUE(M.pull(T1, 1).Applied);
  ASSERT_TRUE(M.app(T1, 0, 0).Applied);
  EXPECT_EQ(M.thread(T1).Sigma.getOrDie("v"), 2);
  ASSERT_TRUE(M.push(T1, 1).Applied);
  ASSERT_TRUE(M.commit(T1).Applied);
  SerializabilityChecker Oracle(Spec);
  EXPECT_EQ(Oracle.checkCommitOrder(M).Serializable, Tri::Yes);
}

TEST(Machine, CopiesAreIndependent) {
  // The explorer forks machines; a copy's mutations must not leak back.
  RegisterRig Rig;
  TxId T = Rig.addThread("tx { mem.write(0, 1) }");
  PushPullMachine Copy = Rig.M;
  ASSERT_TRUE(Copy.app(T, 0, 0).Applied);
  ASSERT_TRUE(Copy.push(T, 0).Applied);
  EXPECT_EQ(Copy.global().size(), 1u);
  EXPECT_TRUE(Rig.M.global().empty()) << "original untouched";
  EXPECT_TRUE(Rig.M.thread(T).L.empty());
  EXPECT_EQ(Rig.M.trace().size(), 0u);
}
