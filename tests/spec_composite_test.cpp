//===- tests/spec_composite_test.cpp - CompositeSpec ------------------------===//

#include "spec/CompositeSpec.h"

#include "TestUtil.h"
#include "spec/CounterSpec.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"

#include <gtest/gtest.h>

using namespace pushpull;
using testutil::hintDisagreements;
using testutil::mkOp;

namespace {

/// The Section 7 flavour: a boosted set, HTM counters, HTM words.
CompositeSpec section7Spec() {
  CompositeSpec S;
  S.add("skiplist", std::make_shared<SetSpec>("skiplist", 2));
  S.add("size", std::make_shared<CounterSpec>("size", 1, 4));
  S.add("mem", std::make_shared<RegisterSpec>("mem", 2, 2));
  return S;
}

} // namespace

TEST(CompositeSpec, RoutesByObject) {
  CompositeSpec S = section7Spec();
  EXPECT_TRUE(S.allowed({mkOp(1, "skiplist", "add", {1}, 1),
                         mkOp(2, "size", "inc", {0}),
                         mkOp(3, "mem", "write", {0, 1}, 1),
                         mkOp(4, "size", "read", {0}, 1),
                         mkOp(5, "mem", "read", {0}, 1)}));
  EXPECT_FALSE(S.allowed({mkOp(1, "size", "read", {0}, 1)}));
  EXPECT_TRUE(S.completionsFrom(S.initial(), {"nosuch", "m", {}}).empty());
}

TEST(CompositeSpec, ComponentsIndependent) {
  CompositeSpec S = section7Spec();
  // An update to one component never affects another's observations.
  EXPECT_TRUE(S.allowed({mkOp(1, "size", "inc", {0}),
                         mkOp(2, "mem", "read", {0}, 0),
                         mkOp(3, "skiplist", "contains", {1}, 0)}));
}

TEST(CompositeSpec, CrossObjectOpsCommute) {
  CompositeSpec S = section7Spec();
  EXPECT_EQ(S.leftMoverHint(mkOp(1, "skiplist", "add", {1}, 1),
                            mkOp(2, "size", "inc", {0})),
            Tri::Yes);
  EXPECT_EQ(S.leftMoverHint(mkOp(1, "mem", "write", {0, 1}, 1),
                            mkOp(2, "size", "read", {0}, 0)),
            Tri::Yes);
}

TEST(CompositeSpec, SameObjectDelegatesToPart) {
  CompositeSpec S = section7Spec();
  EXPECT_EQ(S.leftMoverHint(mkOp(1, "size", "inc", {0}),
                            mkOp(2, "size", "inc", {0})),
            Tri::Yes);
  EXPECT_EQ(S.leftMoverHint(mkOp(1, "mem", "write", {0, 0}, 0),
                            mkOp(2, "mem", "write", {0, 1}, 1)),
            Tri::No);
}

TEST(CompositeSpec, ProbeAlphabetIsUnion) {
  CompositeSpec S = section7Spec();
  SetSpec Part1("skiplist", 2);
  CounterSpec Part2("size", 1, 4);
  RegisterSpec Part3("mem", 2, 2);
  EXPECT_EQ(S.probeOps().size(), Part1.probeOps().size() +
                                     Part2.probeOps().size() +
                                     Part3.probeOps().size());
}

TEST(CompositeSpec, HintAgreesWithSemantics) {
  // Small composite so the semantic product space stays tractable.
  CompositeSpec S;
  S.add("s", std::make_shared<SetSpec>("s", 1));
  S.add("c", std::make_shared<CounterSpec>("c", 1, 2));
  EXPECT_EQ(hintDisagreements(S), std::vector<std::string>{});
}

TEST(CompositeSpec, PrefixClosed) {
  CompositeSpec S = section7Spec();
  std::vector<Operation> Log = {
      mkOp(1, "skiplist", "add", {0}, 1), mkOp(2, "size", "inc", {0}),
      mkOp(3, "mem", "write", {1, 1}, 1), mkOp(4, "size", "read", {0}, 1),
      mkOp(5, "skiplist", "remove", {0}, 1)};
  ASSERT_TRUE(S.allowed(Log));
  for (size_t N = 0; N <= Log.size(); ++N)
    EXPECT_TRUE(S.allowed({Log.begin(), Log.begin() + N}));
}

TEST(CompositeSpec, Name) {
  CompositeSpec S;
  S.add("s", std::make_shared<SetSpec>("s", 1));
  EXPECT_EQ(S.name(), "composite(set(s,u=1))");
}
