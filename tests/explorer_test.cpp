//===- tests/explorer_test.cpp - Exhaustive exploration (Theorem 5.17) -------===//

#include "sim/Explorer.h"

#include "lang/Parser.h"
#include "spec/CounterSpec.h"
#include "spec/QueueSpec.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

using namespace pushpull;

TEST(Explorer, SingleThreadAllPathsSerializable) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  Explorer E(Spec, Movers);
  ExplorerReport R = E.explore(
      {{parseOrDie("tx { mem.write(0, 1) + (v := mem.read(0)) }")}});
  EXPECT_FALSE(R.Truncated);
  EXPECT_GT(R.TerminalConfigs, 0u);
  EXPECT_TRUE(R.clean()) << R.FirstFailure;
}

TEST(Explorer, TwoConflictingRegisterTxsAllInterleavingsSerializable) {
  // Threads=1: the RejectedAttempts assertion below counts *work
  // performed*, which is deterministic only for the sequential engine
  // (parallel workers may race to a configuration and re-expand it).
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  Explorer E(Spec, Movers);
  ExplorerReport R =
      E.explore({{parseOrDie("tx { v := mem.read(0); mem.write(0, 1) }")},
                 {parseOrDie("tx { mem.write(0, 0) }")}});
  EXPECT_FALSE(R.Truncated);
  EXPECT_GT(R.TerminalConfigs, 0u);
  EXPECT_GT(R.RejectedAttempts, 0u)
      << "conflicting pushes must have been rejected somewhere";
  EXPECT_TRUE(R.clean()) << R.FirstFailure;
}

TEST(Explorer, SetTransactionsWithInvariantChecking) {
  // Runs the parallel explorer by default: everything asserted here
  // (truncation, verdicts, invariant count) is one of the deterministic
  // aggregates, so worker count must not matter.
  SetSpec Spec("set", 2);
  MoverChecker Movers(Spec);
  ExplorerConfig EC;
  EC.CheckInvariants = true;
  EC.Threads = 4;
  Explorer E(Spec, Movers, EC);
  ExplorerReport R =
      E.explore({{parseOrDie("tx { a := set.add(0) }")},
                 {parseOrDie("tx { b := set.add(0); c := set.remove(1) }")}});
  EXPECT_FALSE(R.Truncated);
  EXPECT_TRUE(R.clean()) << R.FirstFailure;
  EXPECT_EQ(R.InvariantViolations, 0u);
}

TEST(Explorer, BackwardRulesStaySerializable) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  ExplorerConfig EC;
  EC.ExploreBackwardRules = true;
  EC.MaxConfigs = 500000;
  Explorer E(Spec, Movers, EC);
  ExplorerReport R =
      E.explore({{parseOrDie("tx { mem.write(0, 1) }")},
                 {parseOrDie("tx { v := mem.read(0) }")}});
  EXPECT_TRUE(R.clean()) << R.FirstFailure;
  EXPECT_GT(R.ConfigsVisited, 10u);
}

TEST(Explorer, UncommittedPullsExploredAndStillSerializable) {
  // The non-opaque region: pulls of uncommitted effects are explored too;
  // CMT criterion (iii) gates commits so every terminal stays
  // serializable.
  CounterSpec Spec("c", 1, 3);
  MoverChecker Movers(Spec);
  ExplorerConfig EC;
  EC.ExploreUncommittedPulls = true;
  Explorer E(Spec, Movers, EC);
  ExplorerReport R = E.explore({{parseOrDie("tx { c.inc(0) }")},
                                {parseOrDie("tx { c.inc(0) }")}});
  EXPECT_FALSE(R.Truncated);
  EXPECT_TRUE(R.clean()) << R.FirstFailure;
}

TEST(Explorer, OpaqueFragmentSmallerThanFullModel) {
  CounterSpec Spec("c", 1, 3);
  MoverChecker Movers(Spec);
  ExplorerConfig Opaque;
  Opaque.ExploreUncommittedPulls = false;
  ExplorerConfig Full;
  Full.ExploreUncommittedPulls = true;
  Explorer EO(Spec, Movers, Opaque);
  Explorer EF(Spec, Movers, Full);
  std::vector<std::vector<CodePtr>> Programs = {
      {parseOrDie("tx { c.inc(0) }")}, {parseOrDie("tx { c.inc(0) }")}};
  ExplorerReport RO = EO.explore(Programs);
  ExplorerReport RF = EF.explore(Programs);
  EXPECT_LT(RO.ConfigsVisited, RF.ConfigsVisited)
      << "forbidding uncommitted pulls must shrink the state space";
  EXPECT_TRUE(RO.clean());
  EXPECT_TRUE(RF.clean());
}

TEST(Explorer, QueueNonCommutativityForcesSerialOrder) {
  // Threads=1: asserts RejectedAttempts, which is only deterministic for
  // the sequential engine.
  QueueSpec Spec("q", 2, 2);
  MoverChecker Movers(Spec);
  Explorer E(Spec, Movers);
  ExplorerReport R = E.explore({{parseOrDie("tx { a := q.enq(0) }")},
                                {parseOrDie("tx { b := q.enq(1) }")}});
  EXPECT_FALSE(R.Truncated);
  EXPECT_TRUE(R.clean()) << R.FirstFailure;
  EXPECT_GT(R.RejectedAttempts, 0u)
      << "pushing both uncommitted enqueues must be rejected";
}

TEST(Explorer, TruncationReported) {
  RegisterSpec Spec("mem", 2, 2);
  MoverChecker Movers(Spec);
  ExplorerConfig EC;
  EC.MaxConfigs = 5;
  Explorer E(Spec, Movers, EC);
  ExplorerReport R =
      E.explore({{parseOrDie("tx { mem.write(0, 1); mem.write(1, 1) }")},
                 {parseOrDie("tx { v := mem.read(0) }")}});
  EXPECT_TRUE(R.Truncated);
}

TEST(Explorer, ThreeThreadsStillClean) {
  // The widest scope in this file runs on the worker pool by default —
  // only deterministic totals are asserted.
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  ExplorerConfig EC;
  EC.MaxConfigs = 500000;
  EC.Threads = 4;
  Explorer E(Spec, Movers, EC);
  ExplorerReport R = E.explore({{parseOrDie("tx { mem.write(0, 1) }")},
                                {parseOrDie("tx { v := mem.read(0) }")},
                                {parseOrDie("tx { mem.write(0, 0) }")}});
  EXPECT_FALSE(R.Truncated);
  EXPECT_TRUE(R.clean()) << R.FirstFailure;
}

TEST(Explorer, GrayCriteriaAblationConfirmsNotStrictlyNecessary) {
  // The paper marks UNPUSH criterion (i) and PULL criterion (iii) gray —
  // "not strictly necessary".  The executable ablation confirms it:
  // exploring with them DISABLED still yields zero non-serializable
  // terminals, because PUSH criterion (iii) independently refuses to
  // publish any operation the now-inconsistent local view produced (the
  // transaction wedges instead of committing an anomaly).  What the gray
  // criteria buy is *hygiene*: with them enabled the doomed pull is
  // rejected up front, so the extra wedged region is never entered —
  // visible here as a strictly smaller explored state space.
  auto Explore = [](bool EnforceGray) {
    RegisterSpec Spec("mem", 1, 2);
    MoverChecker Movers(Spec);
    ExplorerConfig EC;
    EC.Machine.EnforceGrayCriteria = EnforceGray;
    Explorer E(Spec, Movers, EC);
    return E.explore(
        {{parseOrDie("tx { v := mem.read(0); w := mem.read(0) }")},
         {parseOrDie("tx { mem.write(0, 1) }")}});
  };
  ExplorerReport WithGray = Explore(true);
  EXPECT_FALSE(WithGray.Truncated);
  EXPECT_TRUE(WithGray.clean()) << WithGray.FirstFailure;

  ExplorerReport WithoutGray = Explore(false);
  EXPECT_FALSE(WithoutGray.Truncated);
  EXPECT_TRUE(WithoutGray.clean())
      << "safety must not depend on the gray criteria: "
      << WithoutGray.FirstFailure;
  EXPECT_GT(WithoutGray.ConfigsVisited, WithGray.ConfigsVisited)
      << "without the gray criteria the explorer enters the wedged region";
}

TEST(Explorer, ParallelSearchMatchesSequentialTotals) {
  // Threads > 1 shards the search but keeps the visited/accounting
  // protocol, so on non-truncated explorations the deterministic
  // aggregates (configs, terminals, verdicts) must equal the Threads=1
  // run exactly — across specs, backward rules, and invariant checking.
  struct Case {
    const char *Name;
    std::function<ExplorerReport(unsigned)> Run;
  };
  auto MakeCase = [](auto MakeSpec, std::vector<std::string> Programs,
                     bool Backward = false, bool Invariants = false) {
    return [=](unsigned Threads) {
      auto Spec = MakeSpec();
      MoverChecker Movers(*Spec);
      ExplorerConfig EC;
      EC.Threads = Threads;
      EC.ExploreBackwardRules = Backward;
      EC.CheckInvariants = Invariants;
      EC.MaxConfigs = 500000;
      Explorer E(*Spec, Movers, EC);
      std::vector<std::vector<CodePtr>> Ps;
      for (const std::string &P : Programs)
        Ps.push_back({parseOrDie(P)});
      return E.explore(Ps);
    };
  };

  std::vector<Case> Cases = {
      {"register r/w vs w",
       MakeCase([] { return std::make_unique<RegisterSpec>("mem", 1, 2); },
                {"tx { v := mem.read(0); mem.write(0, 1) }",
                 "tx { mem.write(0, 0) }"})},
      // (Backward-rule explorations are inherently depth-truncated — the
      // do/undo cycles never bottom out — so they are excluded here: the
      // totals guarantee is for non-truncated searches.)
      {"register three threads",
       MakeCase([] { return std::make_unique<RegisterSpec>("mem", 1, 2); },
                {"tx { mem.write(0, 1) }", "tx { v := mem.read(0) }",
                 "tx { mem.write(0, 0) }"})},
      {"set adds + invariants",
       MakeCase([] { return std::make_unique<SetSpec>("set", 2); },
                {"tx { a := set.add(0) }",
                 "tx { b := set.add(0); c := set.remove(1) }"},
                /*Backward=*/false, /*Invariants=*/true)},
      {"queue enq vs enq",
       MakeCase([] { return std::make_unique<QueueSpec>("q", 2, 2); },
                {"tx { a := q.enq(0) }", "tx { b := q.enq(1) }"})},
  };

  for (Case &C : Cases) {
    ExplorerReport Seq = C.Run(1);
    ExplorerReport Par = C.Run(4);
    ASSERT_FALSE(Seq.Truncated) << C.Name;
    ASSERT_FALSE(Par.Truncated) << C.Name;
    EXPECT_EQ(Par.ConfigsVisited, Seq.ConfigsVisited) << C.Name;
    EXPECT_EQ(Par.TerminalConfigs, Seq.TerminalConfigs) << C.Name;
    EXPECT_EQ(Par.NonSerializable, Seq.NonSerializable) << C.Name;
    EXPECT_EQ(Par.InvariantViolations, Seq.InvariantViolations) << C.Name;
    EXPECT_TRUE(Par.clean()) << C.Name << ": " << Par.FirstFailure;
  }
}
