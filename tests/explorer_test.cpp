//===- tests/explorer_test.cpp - Exhaustive exploration (Theorem 5.17) -------===//

#include "sim/Explorer.h"

#include "lang/Parser.h"
#include "spec/CounterSpec.h"
#include "spec/QueueSpec.h"
#include "spec/RegisterSpec.h"
#include "spec/SetSpec.h"

#include <gtest/gtest.h>

using namespace pushpull;

TEST(Explorer, SingleThreadAllPathsSerializable) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  Explorer E(Spec, Movers);
  ExplorerReport R = E.explore(
      {{parseOrDie("tx { mem.write(0, 1) + (v := mem.read(0)) }")}});
  EXPECT_FALSE(R.Truncated);
  EXPECT_GT(R.TerminalConfigs, 0u);
  EXPECT_TRUE(R.clean()) << R.FirstFailure;
}

TEST(Explorer, TwoConflictingRegisterTxsAllInterleavingsSerializable) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  Explorer E(Spec, Movers);
  ExplorerReport R =
      E.explore({{parseOrDie("tx { v := mem.read(0); mem.write(0, 1) }")},
                 {parseOrDie("tx { mem.write(0, 0) }")}});
  EXPECT_FALSE(R.Truncated);
  EXPECT_GT(R.TerminalConfigs, 0u);
  EXPECT_GT(R.RejectedAttempts, 0u)
      << "conflicting pushes must have been rejected somewhere";
  EXPECT_TRUE(R.clean()) << R.FirstFailure;
}

TEST(Explorer, SetTransactionsWithInvariantChecking) {
  SetSpec Spec("set", 2);
  MoverChecker Movers(Spec);
  ExplorerConfig EC;
  EC.CheckInvariants = true;
  Explorer E(Spec, Movers, EC);
  ExplorerReport R =
      E.explore({{parseOrDie("tx { a := set.add(0) }")},
                 {parseOrDie("tx { b := set.add(0); c := set.remove(1) }")}});
  EXPECT_FALSE(R.Truncated);
  EXPECT_TRUE(R.clean()) << R.FirstFailure;
  EXPECT_EQ(R.InvariantViolations, 0u);
}

TEST(Explorer, BackwardRulesStaySerializable) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  ExplorerConfig EC;
  EC.ExploreBackwardRules = true;
  EC.MaxConfigs = 500000;
  Explorer E(Spec, Movers, EC);
  ExplorerReport R =
      E.explore({{parseOrDie("tx { mem.write(0, 1) }")},
                 {parseOrDie("tx { v := mem.read(0) }")}});
  EXPECT_TRUE(R.clean()) << R.FirstFailure;
  EXPECT_GT(R.ConfigsVisited, 10u);
}

TEST(Explorer, UncommittedPullsExploredAndStillSerializable) {
  // The non-opaque region: pulls of uncommitted effects are explored too;
  // CMT criterion (iii) gates commits so every terminal stays
  // serializable.
  CounterSpec Spec("c", 1, 3);
  MoverChecker Movers(Spec);
  ExplorerConfig EC;
  EC.ExploreUncommittedPulls = true;
  Explorer E(Spec, Movers, EC);
  ExplorerReport R = E.explore({{parseOrDie("tx { c.inc(0) }")},
                                {parseOrDie("tx { c.inc(0) }")}});
  EXPECT_FALSE(R.Truncated);
  EXPECT_TRUE(R.clean()) << R.FirstFailure;
}

TEST(Explorer, OpaqueFragmentSmallerThanFullModel) {
  CounterSpec Spec("c", 1, 3);
  MoverChecker Movers(Spec);
  ExplorerConfig Opaque;
  Opaque.ExploreUncommittedPulls = false;
  ExplorerConfig Full;
  Full.ExploreUncommittedPulls = true;
  Explorer EO(Spec, Movers, Opaque);
  Explorer EF(Spec, Movers, Full);
  std::vector<std::vector<CodePtr>> Programs = {
      {parseOrDie("tx { c.inc(0) }")}, {parseOrDie("tx { c.inc(0) }")}};
  ExplorerReport RO = EO.explore(Programs);
  ExplorerReport RF = EF.explore(Programs);
  EXPECT_LT(RO.ConfigsVisited, RF.ConfigsVisited)
      << "forbidding uncommitted pulls must shrink the state space";
  EXPECT_TRUE(RO.clean());
  EXPECT_TRUE(RF.clean());
}

TEST(Explorer, QueueNonCommutativityForcesSerialOrder) {
  QueueSpec Spec("q", 2, 2);
  MoverChecker Movers(Spec);
  Explorer E(Spec, Movers);
  ExplorerReport R = E.explore({{parseOrDie("tx { a := q.enq(0) }")},
                                {parseOrDie("tx { b := q.enq(1) }")}});
  EXPECT_FALSE(R.Truncated);
  EXPECT_TRUE(R.clean()) << R.FirstFailure;
  EXPECT_GT(R.RejectedAttempts, 0u)
      << "pushing both uncommitted enqueues must be rejected";
}

TEST(Explorer, TruncationReported) {
  RegisterSpec Spec("mem", 2, 2);
  MoverChecker Movers(Spec);
  ExplorerConfig EC;
  EC.MaxConfigs = 5;
  Explorer E(Spec, Movers, EC);
  ExplorerReport R =
      E.explore({{parseOrDie("tx { mem.write(0, 1); mem.write(1, 1) }")},
                 {parseOrDie("tx { v := mem.read(0) }")}});
  EXPECT_TRUE(R.Truncated);
}

TEST(Explorer, ThreeThreadsStillClean) {
  RegisterSpec Spec("mem", 1, 2);
  MoverChecker Movers(Spec);
  ExplorerConfig EC;
  EC.MaxConfigs = 500000;
  Explorer E(Spec, Movers, EC);
  ExplorerReport R = E.explore({{parseOrDie("tx { mem.write(0, 1) }")},
                                {parseOrDie("tx { v := mem.read(0) }")},
                                {parseOrDie("tx { mem.write(0, 0) }")}});
  EXPECT_FALSE(R.Truncated);
  EXPECT_TRUE(R.clean()) << R.FirstFailure;
}

TEST(Explorer, GrayCriteriaAblationConfirmsNotStrictlyNecessary) {
  // The paper marks UNPUSH criterion (i) and PULL criterion (iii) gray —
  // "not strictly necessary".  The executable ablation confirms it:
  // exploring with them DISABLED still yields zero non-serializable
  // terminals, because PUSH criterion (iii) independently refuses to
  // publish any operation the now-inconsistent local view produced (the
  // transaction wedges instead of committing an anomaly).  What the gray
  // criteria buy is *hygiene*: with them enabled the doomed pull is
  // rejected up front, so the extra wedged region is never entered —
  // visible here as a strictly smaller explored state space.
  auto Explore = [](bool EnforceGray) {
    RegisterSpec Spec("mem", 1, 2);
    MoverChecker Movers(Spec);
    ExplorerConfig EC;
    EC.Machine.EnforceGrayCriteria = EnforceGray;
    Explorer E(Spec, Movers, EC);
    return E.explore(
        {{parseOrDie("tx { v := mem.read(0); w := mem.read(0) }")},
         {parseOrDie("tx { mem.write(0, 1) }")}});
  };
  ExplorerReport WithGray = Explore(true);
  EXPECT_FALSE(WithGray.Truncated);
  EXPECT_TRUE(WithGray.clean()) << WithGray.FirstFailure;

  ExplorerReport WithoutGray = Explore(false);
  EXPECT_FALSE(WithoutGray.Truncated);
  EXPECT_TRUE(WithoutGray.clean())
      << "safety must not depend on the gray criteria: "
      << WithoutGray.FirstFailure;
  EXPECT_GT(WithoutGray.ConfigsVisited, WithGray.ConfigsVisited)
      << "without the gray criteria the explorer enters the wedged region";
}
